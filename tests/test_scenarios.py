"""Tests for the declarative scenario format and runner."""

import json

import pytest

from repro.scenarios import (
    EXPECTATIONS,
    ScenarioSpec,
    ScenarioSpecError,
    library_scenarios,
    load_scenario,
    run_scenario,
    run_scenario_file,
    write_scenario_report,
)


def _tiny_raw(**overrides):
    raw = {
        "name": "tiny",
        "graph": {"kind": "dag", "vertices": 60, "seed": 1},
        "traffic": {
            "pairs": {"count": 300, "skew": 1.1, "seed": 2},
            "arrivals": {"shape": "poisson", "rate": 300000.0, "seed": 3},
        },
        "serving": {"shards": 2, "replicas": 2, "policy": "round-robin"},
        "expect": {"incorrect_answers_max": 0, "availability_min": 0.99},
    }
    raw.update(overrides)
    return raw


# ----------------------------------------------------------------------
# Spec parsing and validation
# ----------------------------------------------------------------------

def test_from_dict_to_dict_round_trip():
    spec = ScenarioSpec.from_dict(_tiny_raw())
    again = ScenarioSpec.from_dict(spec.to_dict())
    assert again == spec


def test_unknown_top_level_key_rejected():
    with pytest.raises(ScenarioSpecError, match="unknown"):
        ScenarioSpec.from_dict(_tiny_raw(surprise=1))


def test_unknown_nested_key_rejected():
    raw = _tiny_raw()
    raw["serving"]["turbo"] = True
    with pytest.raises(ScenarioSpecError, match="turbo"):
        ScenarioSpec.from_dict(raw)


def test_unknown_expectation_rejected():
    with pytest.raises(ScenarioSpecError, match="expectation"):
        ScenarioSpec.from_dict(_tiny_raw(expect={"vibes_min": 1}))


def test_expectations_registry_names_are_directional():
    assert all(k.endswith(("_min", "_max")) or k.endswith("_max_seconds")
               for k in EXPECTATIONS)


def test_name_required():
    raw = _tiny_raw()
    del raw["name"]
    with pytest.raises(ScenarioSpecError, match="name"):
        ScenarioSpec.from_dict(raw)


def test_fault_plan_must_fit_layout():
    with pytest.raises(ScenarioSpecError, match="shard"):
        ScenarioSpec.from_dict(_tiny_raw(faults="crash=7.0@0.001"))


def test_flash_shape_needs_phases():
    raw = _tiny_raw()
    raw["traffic"]["arrivals"] = {"shape": "flash"}
    with pytest.raises(ScenarioSpecError, match="phases"):
        ScenarioSpec.from_dict(raw)


def test_load_scenario_json(tmp_path):
    path = tmp_path / "tiny.json"
    path.write_text(json.dumps(_tiny_raw()))
    assert load_scenario(path).name == "tiny"


def test_load_scenario_unknown_suffix(tmp_path):
    path = tmp_path / "tiny.toml"
    path.write_text("x = 1")
    with pytest.raises(ScenarioSpecError):
        load_scenario(path)


# ----------------------------------------------------------------------
# Runner
# ----------------------------------------------------------------------

def test_tiny_static_scenario_passes():
    result = run_scenario(ScenarioSpec.from_dict(_tiny_raw()))
    assert result.ok
    assert result.audited == result.report.served
    assert result.incorrect_answers == 0
    assert {c.name for c in result.checks} == {
        "incorrect_answers_max", "availability_min",
    }
    assert "tiny" in result.render()


def test_impossible_expectation_fails_with_actuals():
    raw = _tiny_raw(expect={"availability_min": 2.0})
    result = run_scenario(ScenarioSpec.from_dict(raw))
    assert not result.ok
    check = result.checks[0]
    assert check.name == "availability_min"
    assert check.actual <= 1.0
    assert ">=" in check.render()


def test_dynamic_scenario_with_faults_audits_every_version():
    raw = _tiny_raw(
        name="tiny-dynamic",
        replication={"delay_seconds": 0.0005, "max_lag": 8},
        updates={
            "count": 10, "insert_ratio": 0.5, "seed": 4,
            "start_seconds": 0.0002, "interval_seconds": 0.0001,
        },
        faults="crash=0.0@0.0003,recover=0.0@0.0008",
    )
    result = run_scenario(ScenarioSpec.from_dict(raw))
    assert result.incorrect_answers == 0
    assert result.audited == result.report.served
    names = [e["event"] for e in result.events]
    assert "serve.replica_crash" in names
    assert "serve.replica_recover" in names


def test_result_to_dict_is_json_serializable():
    result = run_scenario(ScenarioSpec.from_dict(_tiny_raw()))
    payload = json.loads(json.dumps(result.to_dict()))
    assert payload["name"] == "tiny"
    assert payload["ok"] is True
    assert payload["audit"]["incorrect_answers"] == 0


def test_run_scenario_file_and_report(tmp_path):
    path = tmp_path / "tiny.json"
    path.write_text(json.dumps(_tiny_raw()))
    result = run_scenario_file(path)
    assert result.ok
    report_path = tmp_path / "out" / "report.json"
    report_path.parent.mkdir()
    write_scenario_report([result], report_path)
    payload = json.loads(report_path.read_text())
    assert payload["ok"] is True
    assert payload["scenarios"][0]["name"] == "tiny"


# ----------------------------------------------------------------------
# The library
# ----------------------------------------------------------------------

def test_library_has_the_documented_scenarios():
    names = set(library_scenarios())
    assert names == {
        "flash_crowd", "diurnal_wave", "hot_key_storm",
        "shard_loss_write_burst", "cache_stampede", "write_storm",
    }


@pytest.mark.parametrize("name", sorted(
    ["flash_crowd", "diurnal_wave", "hot_key_storm",
     "shard_loss_write_burst", "cache_stampede", "write_storm"]
))
def test_library_scenario_passes(name):
    result = run_scenario_file(library_scenarios()[name])
    assert result.ok, result.render()
    assert result.incorrect_answers == 0


def test_flagship_scenario_fails_over_with_zero_wrong_answers():
    result = run_scenario_file(library_scenarios()["shard_loss_write_burst"])
    assert result.report.failovers >= 1
    assert result.incorrect_answers == 0
    assert result.report.confirmed_reads > 0
    assert any(e["event"] == "serve.failover" for e in result.events)
