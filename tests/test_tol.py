"""Tests for TOL (Algorithm 1)."""

import pytest
from hypothesis import given, settings

from repro.baselines.transitive_closure import TransitiveClosure
from repro.core.tol import tol_index, tol_index_reference
from repro.errors import OutOfMemoryError, TimeLimitExceeded
from repro.graph.digraph import DiGraph
from repro.graph.generators import random_digraph, social_graph
from repro.graph.order import degree_order, random_order
from repro.pregel.cost_model import CostModel
from repro.pregel.serial import SerialMeter
from tests.conftest import digraphs


def test_empty_and_singleton_graphs():
    assert tol_index(DiGraph(0, [])).num_vertices == 0
    idx = tol_index(DiGraph(1, []))
    assert list(idx.in_labels(0)) == [0]
    assert list(idx.out_labels(0)) == [0]
    assert idx.query(0, 0)


def test_two_vertex_edge():
    idx = tol_index(DiGraph(2, [(0, 1)]))
    assert idx.query(0, 1)
    assert not idx.query(1, 0)
    assert idx.query(0, 0) and idx.query(1, 1)


def test_two_cycle_prunes_lower_vertex_self_label():
    """In a cycle, the lower-order vertex keeps no self-label — the
    higher one covers it (Section II treatment of cyclic graphs)."""
    g = DiGraph(2, [(0, 1), (1, 0)])
    order = degree_order(g)  # tie -> vertex 1 is higher order
    idx = tol_index(g, order)
    high, low = 1, 0
    assert list(idx.in_labels(high)) == [high]
    assert list(idx.out_labels(high)) == [high]
    assert list(idx.in_labels(low)) == [high]
    assert list(idx.out_labels(low)) == [high]
    for s in (0, 1):
        for t in (0, 1):
            assert idx.query(s, t)


def test_default_order_is_degree_order():
    g = random_digraph(30, 90, seed=5)
    assert tol_index(g) == tol_index(g, degree_order(g))


@settings(max_examples=60, deadline=None)
@given(digraphs())
def test_property_optimized_matches_reference(g):
    order = degree_order(g)
    assert tol_index(g, order) == tol_index_reference(g, order)


@settings(max_examples=30, deadline=None)
@given(digraphs())
def test_property_reference_matches_under_random_order(g):
    order = random_order(g, seed=13)
    assert tol_index(g, order) == tol_index_reference(g, order)


@settings(max_examples=40, deadline=None)
@given(digraphs())
def test_property_cover_constraint(g):
    """Definition 3: q(s,t) iff s -> t, for every pair."""
    oracle = TransitiveClosure(g)
    idx = tol_index(g)
    for s in range(g.num_vertices):
        for t in range(g.num_vertices):
            assert idx.query(s, t) == oracle.query(s, t), (s, t)


@settings(max_examples=30, deadline=None)
@given(digraphs())
def test_property_labels_respect_order_direction(g):
    """Every label entry is a vertex of order >= the labeled vertex."""
    order = degree_order(g)
    idx = tol_index(g, order)
    for v in range(g.num_vertices):
        for u in idx.in_labels(v):
            assert u == v or order.higher(u, v)
        for u in idx.out_labels(v):
            assert u == v or order.higher(u, v)


def test_meter_counts_work():
    g = social_graph(300, seed=3)
    meter = SerialMeter(CostModel(time_limit_seconds=None))
    tol_index(g, meter=meter)
    assert meter.units > g.num_edges  # at least one pass over the edges


def test_memory_gate():
    g = social_graph(300, seed=3)
    tiny = CostModel(node_memory_bytes=1024)
    with pytest.raises(OutOfMemoryError):
        tol_index(g, meter=SerialMeter(tiny))


def test_time_limit_gate():
    g = social_graph(800, seed=4)
    impatient = CostModel(time_limit_seconds=1e-9)
    with pytest.raises(TimeLimitExceeded):
        tol_index(g, meter=SerialMeter(impatient))


def test_index_deterministic():
    g = social_graph(400, seed=6)
    assert tol_index(g) == tol_index(g)
