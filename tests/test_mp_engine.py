"""Unit tests of the multiprocessing engine and the shared partition
assignment helper.

The engine-equivalence matrix lives in ``test_engine_equivalence.py``;
this module covers the plumbing around it: the single
:func:`~repro.graph.partition.node_assignment` helper every executor
shares (pinned by a golden so a silent change to the hash mix cannot
slip through), engine selection and its rejection paths, worker
timelines, and the CLI flags.
"""

from __future__ import annotations

import pytest

from repro.cli import main
from repro.core.drl import drl_index
from repro.core.multicore import (
    _WORKING_BYTES_PER_VERTEX,
    per_core_working_bytes,
)
from repro.errors import ReproError
from repro.faults import FaultPlan
from repro.graph.generators import citation_graph
from repro.graph.io import write_edge_list
from repro.graph.partition import (
    PARTITIONER_STRATEGIES,
    HashPartitioner,
    node_assignment,
)
from repro.pregel.engine import (
    ENGINE_NAMES,
    Cluster,
    SimulatorEngine,
    resolve_engine,
)
from repro.pregel.mp import MultiprocessEngine
from repro.pregel.vertex_program import VertexProgram


# ----------------------------------------------------------------------
# The shared partition-assignment helper (one source of truth)
# ----------------------------------------------------------------------
def test_node_assignment_golden():
    """Pin the hash assignment both engines and the multi-core memory
    estimator share; a change here silently re-partitions every build."""
    assert list(node_assignment(HashPartitioner(4), 12)) == [
        0, 1, 2, 0, 1, 3, 0, 2, 3, 1, 2, 0,
    ]


@pytest.mark.parametrize("strategy", sorted(PARTITIONER_STRATEGIES))
def test_node_assignment_matches_partition(strategy):
    partitioner = PARTITIONER_STRATEGIES[strategy](3, 20)
    assignment = node_assignment(partitioner, 20)
    assert assignment.typecode == "q"
    for node, members in enumerate(partitioner.partition(20)):
        for v in members:
            assert assignment[v] == node


def test_multicore_estimate_counts_by_shared_assignment():
    graph = citation_graph(50, avg_refs=2.0, seed=1)
    partitioner = HashPartitioner(4)
    per_core = per_core_working_bytes(graph, partitioner)
    assignment = node_assignment(partitioner, graph.num_vertices)
    for core, estimate in enumerate(per_core):
        owned = sum(1 for node in assignment if node == core)
        assert estimate == _WORKING_BYTES_PER_VERTEX * owned
    assert sum(per_core) == _WORKING_BYTES_PER_VERTEX * graph.num_vertices


class _OwnerProbeProgram(VertexProgram):
    """Records which node each vertex computed on; no messages."""

    mp_supported = True

    def __init__(self, num_vertices: int):
        self.owners = [-1] * num_vertices

    def compute(self, ctx, w, messages) -> None:
        self.owners[w] = ctx.node_of(w)

    def mp_collect(self, vertices):
        return [(w, self.owners[w]) for w in vertices]

    def mp_merge(self, collected) -> None:
        for w, owner in collected:
            self.owners[w] = owner


@pytest.mark.parametrize("engine", ENGINE_NAMES)
def test_both_engines_place_vertices_by_shared_helper(engine):
    """Regression for the one-helper rule: the vertex placement either
    engine actually computes with equals ``node_assignment``'s output."""
    graph = citation_graph(30, avg_refs=2.0, seed=7)
    cluster = Cluster(num_nodes=5, engine=engine, workers=2)
    program = _OwnerProbeProgram(graph.num_vertices)
    cluster.run(graph, program)
    expected = node_assignment(cluster.partitioner, graph.num_vertices)
    assert program.owners == list(expected)


# ----------------------------------------------------------------------
# Engine selection
# ----------------------------------------------------------------------
def test_resolve_engine():
    assert isinstance(resolve_engine("sim"), SimulatorEngine)
    mp = resolve_engine("mp", workers=3)
    assert isinstance(mp, MultiprocessEngine)
    assert mp.workers == 3
    instance = MultiprocessEngine(workers=2)
    assert resolve_engine(instance) is instance
    with pytest.raises(ValueError, match="unknown engine"):
        resolve_engine("gpu")


def test_cluster_exposes_engine_by_name():
    assert Cluster(num_nodes=2).engine.name == "sim"
    assert Cluster(num_nodes=2, engine="mp").engine.name == "mp"


# ----------------------------------------------------------------------
# Rejection paths
# ----------------------------------------------------------------------
def test_mp_rejects_fault_injection():
    with pytest.raises(ReproError, match="does not support fault"):
        Cluster(num_nodes=4, engine="mp", faults=FaultPlan.parse("crash=1@2"))


def test_mp_rejects_checkpointing():
    with pytest.raises(ReproError, match="does not support fault"):
        Cluster(num_nodes=4, engine="mp", checkpoint_interval=2)


def test_mp_rejects_programs_without_hooks():
    class _Plain(VertexProgram):
        def compute(self, ctx, w, messages) -> None:  # pragma: no cover
            pass

    graph = citation_graph(10, avg_refs=1.5, seed=0)
    with pytest.raises(ReproError, match="mp_supported"):
        Cluster(num_nodes=2, engine="mp").run(graph, _Plain())


def test_vertex_program_mp_hooks_default_unimplemented():
    class _Claims(VertexProgram):
        mp_supported = True

        def compute(self, ctx, w, messages) -> None:  # pragma: no cover
            pass

    with pytest.raises(NotImplementedError, match="mp_collect"):
        _Claims().mp_collect([0])
    with pytest.raises(NotImplementedError, match="mp_merge"):
        _Claims().mp_merge([])


# ----------------------------------------------------------------------
# Worker behaviour
# ----------------------------------------------------------------------
def test_single_worker_matches_simulator():
    graph = citation_graph(24, avg_refs=2.0, seed=4)
    sim = drl_index(graph, num_nodes=3)
    mp = drl_index(graph, num_nodes=3, engine="mp", workers=1)
    assert mp.index == sim.index
    assert mp.stats.simulated_seconds == sim.stats.simulated_seconds


def test_mp_timeline_holds_measured_worker_slices():
    """Under mp, the timeline is per *worker process* with measured
    wall-clock, not the simulator's modelled per-node split."""
    graph = citation_graph(24, avg_refs=2.0, seed=4)
    result = drl_index(
        graph, num_nodes=4, engine="mp", workers=2, node_timeline=True
    )
    timeline = result.stats.node_timeline
    assert timeline is not None
    assert timeline.num_nodes == 2
    assert timeline.slices
    assert {piece.node for piece in timeline.slices} <= {0, 1}
    for piece in timeline.slices:
        assert piece.compute_seconds >= 0.0
        assert piece.barrier_wait_seconds >= 0.0


# ----------------------------------------------------------------------
# CLI wiring
# ----------------------------------------------------------------------
def test_cli_build_engines_agree_byte_for_byte(tmp_path, capsys):
    edges = tmp_path / "g.edges"
    write_edge_list(citation_graph(60, avg_refs=2.0, seed=2), edges)
    sim_idx = tmp_path / "sim.idx"
    mp_idx = tmp_path / "mp.idx"
    argv = ["build", str(edges), "--method", "drl", "--nodes", "4"]
    assert main(argv + ["-o", str(sim_idx), "--engine", "sim"]) == 0
    assert main(
        argv + ["-o", str(mp_idx), "--engine", "mp", "--workers", "2"]
    ) == 0
    capsys.readouterr()
    assert sim_idx.read_bytes() == mp_idx.read_bytes()


def test_cli_rejects_bad_engine_combinations(tmp_path, capsys):
    edges = tmp_path / "g.edges"
    write_edge_list(citation_graph(10, avg_refs=1.5, seed=0), edges)
    out = tmp_path / "x.idx"
    base = ["build", str(edges), "-o", str(out)]
    assert main(base + ["--method", "tol", "--engine", "mp"]) == 2
    assert main(base + ["--engine", "mp", "--faults", "crash=1@2"]) == 2
    assert main(base + ["--engine", "mp", "--checkpoint-interval", "2"]) == 2
    assert main(base + ["--engine", "mp", "--workers", "0"]) == 2
    assert main(base + ["--workers", "2"]) == 2
    err = capsys.readouterr().err
    assert "only applies to --engine mp" in err
