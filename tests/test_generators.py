"""Unit tests for the synthetic graph generators."""

import pytest

from repro.graph.generators import (
    citation_graph,
    gn_graph,
    knowledge_graph,
    kronecker_graph,
    lattice_graph,
    paper_example_graph,
    paper_example_order,
    random_dag,
    random_digraph,
    scc_heavy_graph,
    social_graph,
    web_graph,
)
from repro.graph.scc import strongly_connected_components


def _is_acyclic(graph) -> bool:
    return all(len(c) == 1 for c in strongly_connected_components(graph))


# ----------------------------------------------------------------------
# The paper's running example (Fig. 1)
# ----------------------------------------------------------------------
def test_paper_example_shape():
    g = paper_example_graph()
    assert g.num_vertices == 11
    assert g.num_edges == 15


def test_paper_example_neighborhoods():
    """Example 1: N_in(v2) = {v6}, N_out(v2) = {v1, v3, v4, v5}."""
    g = paper_example_graph()
    v2 = 1
    assert {x + 1 for x in g.in_neighbors(v2)} == {6}
    assert {x + 1 for x in g.out_neighbors(v2)} == {1, 3, 4, 5}


def test_paper_example_anc_des_of_v2():
    """Example 1: ANC(v2) and DES(v2)."""
    from repro.graph.traversal import reachable_set

    g = paper_example_graph()
    v2 = 1
    assert {x + 1 for x in reachable_set(g, v2)} == set(range(1, 12))
    assert {x + 1 for x in reachable_set(g.reverse(), v2)} == {2, 3, 4, 6}


def test_paper_example_degree_products():
    """Example 3: ord(v1) has product 12, ord(v10) has product 2."""
    g = paper_example_graph()
    product = lambda v: (g.in_degree(v) + 1) * (g.out_degree(v) + 1)
    assert product(0) == 12
    assert product(9) == 2


def test_paper_example_order_is_index_order():
    order = paper_example_order()
    assert [order.rank(v) for v in range(11)] == list(range(11))


# ----------------------------------------------------------------------
# Random generators
# ----------------------------------------------------------------------
def test_random_digraph_exact_size():
    g = random_digraph(50, 200, seed=1)
    assert g.num_vertices == 50
    assert g.num_edges == 200
    assert not any(u == v for u, v in g.edges())


def test_random_digraph_deterministic():
    assert random_digraph(30, 60, seed=9) == random_digraph(30, 60, seed=9)
    assert random_digraph(30, 60, seed=9) != random_digraph(30, 60, seed=10)


def test_random_digraph_too_many_edges():
    with pytest.raises(ValueError):
        random_digraph(3, 7, seed=0)


def test_random_dag_is_acyclic():
    g = random_dag(40, 150, seed=2)
    assert g.num_edges == 150
    assert _is_acyclic(g)


def test_random_dag_too_many_edges():
    with pytest.raises(ValueError):
        random_dag(4, 7, seed=0)


def test_gn_graph_tree_shape():
    g = gn_graph(100, seed=3)
    assert g.num_edges == 99
    assert all(g.out_degree(v) == 1 for v in range(1, 100))
    assert g.out_degree(0) == 0


def test_gn_graph_needs_a_vertex():
    with pytest.raises(ValueError):
        gn_graph(0)


# ----------------------------------------------------------------------
# Topology-class generators
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "factory",
    [
        lambda: social_graph(300, seed=4),
        lambda: web_graph(300, seed=4),
        lambda: citation_graph(300, seed=4),
        lambda: knowledge_graph(300, seed=4),
        lambda: kronecker_graph(7, seed=4),
    ],
    ids=["social", "web", "citation", "knowledge", "kronecker"],
)
def test_generator_determinism_and_sanity(factory):
    a, b = factory(), factory()
    assert a == b
    assert a.num_edges > a.num_vertices / 2
    assert not any(u == v for u, v in a.edges())


def test_social_graph_has_cycles():
    g = social_graph(400, seed=5, reciprocity=0.5)
    assert not _is_acyclic(g)


def test_citation_graph_is_acyclic():
    assert _is_acyclic(citation_graph(400, seed=6))


def test_web_graph_has_core():
    g = web_graph(400, seed=7)
    biggest = max(map(len, strongly_connected_components(g)))
    assert biggest > 3  # a strongly connected core exists


def test_knowledge_graph_hubs():
    g = knowledge_graph(400, seed=8)
    max_in = max(g.in_degree(v) for v in g.vertices())
    assert max_in > 10  # categories are hubs


def test_knowledge_graph_back_links_create_cycles():
    assert _is_acyclic(knowledge_graph(300, seed=9, back_link=0.0))
    assert not _is_acyclic(knowledge_graph(300, seed=9, back_link=0.5))


def test_kronecker_graph_size():
    g = kronecker_graph(8, edge_factor=4, seed=10)
    assert g.num_vertices == 256
    assert 0 < g.num_edges <= 4 * 256


def test_kronecker_bad_initiator():
    with pytest.raises(ValueError):
        kronecker_graph(4, initiator=(0.5, 0.5, 0.5, 0.5))
    with pytest.raises(ValueError):
        kronecker_graph(0)


def test_degree_skew_in_preferential_generators():
    """Power-law-ish generators must concentrate in-degree on hubs."""
    for factory in (social_graph, web_graph):
        g = factory(500, seed=11)
        degrees = sorted((g.in_degree(v) for v in g.vertices()), reverse=True)
        top_share = sum(degrees[:25]) / max(1, sum(degrees))
        assert top_share > 0.15, factory.__name__


@pytest.mark.parametrize(
    "factory",
    [social_graph, web_graph, citation_graph],
    ids=["social", "web", "citation"],
)
def test_generators_reject_tiny_n(factory):
    with pytest.raises(ValueError):
        factory(1)


def test_knowledge_graph_rejects_tiny_n():
    with pytest.raises(ValueError):
        knowledge_graph(3)


# ----------------------------------------------------------------------
# Fuzzing-family generators (lattice, SCC-heavy)
# ----------------------------------------------------------------------
def test_lattice_graph_shape_and_determinism():
    g = lattice_graph(4, 5, seed=0)
    assert g == lattice_graph(4, 5, seed=0)
    assert g.num_vertices == 20
    # Interior cell (r, c) points right and down.
    assert g.has_edge(0, 1) and g.has_edge(0, 5)
    assert _is_acyclic(g)


def test_lattice_torus_is_one_scc():
    g = lattice_graph(3, 4, wrap=True)
    components = strongly_connected_components(g)
    assert len(components) == 1
    assert len(components[0]) == 12


def test_lattice_diagonals_stay_acyclic():
    g = lattice_graph(5, 5, diagonal_prob=1.0, seed=2)
    assert _is_acyclic(g)
    assert g.num_edges > lattice_graph(5, 5).num_edges


def test_lattice_rejects_empty():
    with pytest.raises(ValueError):
        lattice_graph(0, 3)


def test_scc_heavy_graph_is_scc_dominated():
    g = scc_heavy_graph(60, seed=5)
    assert g == scc_heavy_graph(60, seed=5)
    components = strongly_connected_components(g)
    in_nontrivial = sum(len(c) for c in components if len(c) > 1)
    assert in_nontrivial > g.num_vertices / 3
    assert not any(u == v for u, v in g.edges())


def test_scc_heavy_rejects_tiny_n():
    with pytest.raises(ValueError):
        scc_heavy_graph(1)
