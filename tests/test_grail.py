"""Tests for the GRAIL baseline."""

import pytest
from hypothesis import given, settings

from repro.baselines.grail import build_grail
from repro.baselines.transitive_closure import TransitiveClosure
from repro.errors import OutOfMemoryError
from repro.graph.digraph import DiGraph
from repro.graph.generators import citation_graph, social_graph
from repro.pregel.cost_model import CostModel
from repro.pregel.serial import SerialMeter
from tests.conftest import digraphs


@settings(max_examples=50, deadline=None)
@given(digraphs())
def test_property_grail_always_correct(g):
    oracle = TransitiveClosure(g)
    grail = build_grail(g, seed=5)
    for s in range(g.num_vertices):
        for t in range(g.num_vertices):
            assert grail.query(s, t) == oracle.query(s, t), (s, t)


@settings(max_examples=25, deadline=None)
@given(digraphs())
def test_property_refutations_are_sound(g):
    """A label-only negative must be a true negative."""
    oracle = TransitiveClosure(g)
    grail = build_grail(g, seed=6)
    for s in range(g.num_vertices):
        for t in range(g.num_vertices):
            answer, fallback = grail.query_verbose(s, t)
            if not fallback and not answer:
                assert not oracle.query(s, t)


def test_same_scc_immediate():
    g = DiGraph(3, [(0, 1), (1, 0), (1, 2)])
    grail = build_grail(g)
    answer, fallback = grail.query_verbose(0, 1)
    assert answer and not fallback


def test_dimensions_parameter():
    g = social_graph(200, seed=7)
    one = build_grail(g, dimensions=1)
    five = build_grail(g, dimensions=5)
    assert one.num_dimensions == 1
    assert five.num_dimensions == 5
    assert five.size_bytes() > one.size_bytes()
    with pytest.raises(ValueError):
        build_grail(g, dimensions=0)


def test_more_dimensions_refute_no_less():
    """Extra traversals can only add refutation power."""
    g = citation_graph(300, seed=8)
    few = build_grail(g, dimensions=1, seed=1)
    many = build_grail(g, dimensions=5, seed=1)
    refuted_few = refuted_many = 0
    for s in range(0, 300, 11):
        for t in range(0, 300, 13):
            refuted_few += not few.query_verbose(s, t)[1] and not few.query(s, t)
            refuted_many += (
                not many.query_verbose(s, t)[1] and not many.query(s, t)
            )
    assert refuted_many >= refuted_few


def test_meter_and_memory_gate():
    g = social_graph(200, seed=9)
    meter = SerialMeter(CostModel(time_limit_seconds=None))
    build_grail(g, meter=meter)
    assert meter.units > g.num_edges
    with pytest.raises(OutOfMemoryError):
        build_grail(g, meter=SerialMeter(CostModel(node_memory_bytes=128)))


def test_deterministic_given_seed():
    g = social_graph(150, seed=10)
    a = build_grail(g, seed=3)
    b = build_grail(g, seed=3)
    assert a._ranks == b._ranks
    assert a._mins == b._mins
