"""Tests for ReachabilityIndex (label storage and queries)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.labels import ReachabilityIndex


def _index(ins, outs) -> ReachabilityIndex:
    return ReachabilityIndex.from_label_lists(ins, outs)


def test_labels_sorted_on_construction():
    idx = _index([[3, 1, 2]], [[9, 0]])
    assert list(idx.in_labels(0)) == [1, 2, 3]
    assert list(idx.out_labels(0)) == [0, 9]


def test_query_intersection():
    idx = _index([[], [5, 7]], [[5, 9], []])
    assert idx.query(0, 1)  # common hop 5
    assert not idx.query(1, 0)
    assert not idx.query(1, 1)


def test_query_empty_labels():
    idx = _index([[], []], [[], []])
    assert not idx.query(0, 1)


def test_hop_vertex():
    idx = _index([[], [3, 5, 7]], [[5, 7], []])
    assert idx.hop_vertex(0, 1) == 5
    assert idx.hop_vertex(1, 0) is None


def test_mismatched_sides_rejected():
    with pytest.raises(ValueError):
        ReachabilityIndex.from_label_lists([[0]], [[0], [1]])


def test_statistics():
    idx = _index([[1], [1, 2]], [[], [0, 1, 2]])
    assert idx.num_vertices == 2
    assert idx.num_entries == 6
    assert idx.size_bytes() == 48
    assert idx.size_bytes(entry_bytes=4) == 24
    assert idx.largest_label == 3
    assert idx.average_label == 1.5


def test_statistics_empty_index():
    idx = _index([], [])
    assert idx.num_vertices == 0
    assert idx.largest_label == 0
    assert idx.average_label == 0.0


def test_from_backward_sets_inverts():
    # v0's backward in-set {0, 1} means 0 and 1 carry 0 in L_in.
    idx = ReachabilityIndex.from_backward_sets(
        3, {0: {0, 1}, 2: {2}}, {0: {0}, 1: {1, 2}}
    )
    assert list(idx.in_labels(0)) == [0]
    assert list(idx.in_labels(1)) == [0]
    assert list(idx.in_labels(2)) == [2]
    assert list(idx.out_labels(2)) == [1]


def test_equality():
    a = _index([[1]], [[2]])
    b = _index([[1]], [[2]])
    c = _index([[1]], [[3]])
    assert a == b
    assert a != c
    assert a.__eq__(7) is NotImplemented


def test_save_load_round_trip(tmp_path):
    idx = _index([[1, 5], [], [0]], [[2], [4, 6], []])
    path = tmp_path / "index.bin"
    idx.save(path)
    assert ReachabilityIndex.load(path) == idx


def test_load_rejects_garbage(tmp_path):
    path = tmp_path / "bad.bin"
    path.write_bytes(b"XXXX" + b"\x00" * 16)
    with pytest.raises(ValueError, match="not a reachability index"):
        ReachabilityIndex.load(path)


def test_load_rejects_bad_version(tmp_path):
    import struct

    path = tmp_path / "ver.bin"
    path.write_bytes(b"RLIX" + struct.pack("<IQ", 42, 0))
    with pytest.raises(ValueError, match="version"):
        ReachabilityIndex.load(path)


def test_load_rejects_truncation(tmp_path):
    idx = _index([[1, 2, 3]], [[4, 5, 6]])
    path = tmp_path / "trunc.bin"
    idx.save(path)
    path.write_bytes(path.read_bytes()[:-4])
    with pytest.raises(ValueError, match="truncated"):
        ReachabilityIndex.load(path)


@settings(max_examples=50, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.sets(st.integers(0, 30), max_size=6),
            st.sets(st.integers(0, 30), max_size=6),
        ),
        min_size=1,
        max_size=8,
    )
)
def test_property_query_equals_set_intersection(labels):
    ins = [sorted(a) for a, _ in labels]
    outs = [sorted(b) for _, b in labels]
    idx = ReachabilityIndex.from_label_lists(ins, outs)
    n = len(labels)
    for s in range(n):
        for t in range(n):
            expected = bool(set(outs[s]) & set(ins[t]))
            assert idx.query(s, t) == expected
            hop = idx.hop_vertex(s, t)
            if expected:
                assert hop == min(set(outs[s]) & set(ins[t]))
            else:
                assert hop is None
