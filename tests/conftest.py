"""Shared fixtures and hypothesis strategies."""

from __future__ import annotations

import pytest
from hypothesis import strategies as st

from repro.graph.digraph import DiGraph
from repro.graph.generators import paper_example_graph, paper_example_order


@st.composite
def digraphs(draw, max_vertices: int = 24, max_edge_factor: int = 4) -> DiGraph:
    """Random simple digraphs, cycles included, possibly disconnected."""
    n = draw(st.integers(min_value=1, max_value=max_vertices))
    possible = [(u, v) for u in range(n) for v in range(n) if u != v]
    cap = min(len(possible), max_edge_factor * n)
    edges = draw(
        st.lists(st.sampled_from(possible), max_size=cap, unique=True)
        if possible
        else st.just([])
    )
    return DiGraph(n, edges)


@st.composite
def dags(draw, max_vertices: int = 20) -> DiGraph:
    """Random DAGs (edges go low id -> high id)."""
    n = draw(st.integers(min_value=1, max_value=max_vertices))
    possible = [(u, v) for u in range(n) for v in range(u + 1, n)]
    edges = draw(
        st.lists(st.sampled_from(possible), max_size=3 * n, unique=True)
        if possible
        else st.just([])
    )
    return DiGraph(n, edges)


@st.composite
def family_graphs(draw, max_vertices: int = 20) -> DiGraph:
    """Graphs drawn from the fuzz harness's families (DAG, cyclic,
    SCC-heavy, power-law, lattice) — structured inputs that stress the
    labeling algorithms harder than uniform random digraphs."""
    from repro.fuzz.cases import FAMILIES, family_graph

    family = draw(st.sampled_from(FAMILIES))
    n = draw(st.integers(min_value=4, max_value=max_vertices))
    seed = draw(st.integers(min_value=0, max_value=2**20))
    return family_graph(family, n, seed)


@pytest.fixture
def paper_graph() -> DiGraph:
    """Fig. 1's graph (vertices 0..10 = the paper's v1..v11)."""
    return paper_example_graph()


@pytest.fixture
def paper_order():
    """The running example's order: v1 > v2 > ... > v11."""
    return paper_example_order()


# Expected label sets from Table II, keyed by 1-indexed paper vertex.
TABLE_II_IN = {
    1: {1}, 2: {2}, 3: {2}, 4: {2}, 5: {1}, 6: {2}, 7: {1},
    8: {1, 8}, 9: {1, 8, 9}, 10: {2, 10}, 11: {2, 11},
}
TABLE_II_OUT = {
    1: {1}, 2: {1, 2}, 3: {1, 2}, 4: {1, 2}, 5: {1}, 6: {1, 2},
    7: {1}, 8: {8}, 9: {9}, 10: {10}, 11: {11},
}
# Expected backward label sets from Table III.
TABLE_III_IN = {
    1: {1, 5, 7, 8, 9}, 2: {2, 3, 4, 6, 10, 11}, 3: set(), 4: set(),
    5: set(), 6: set(), 7: set(), 8: {8, 9}, 9: {9}, 10: {10}, 11: {11},
}
TABLE_III_OUT = {
    1: {1, 2, 3, 4, 5, 6, 7}, 2: {2, 3, 4, 6}, 3: set(), 4: set(),
    5: set(), 6: set(), 7: set(), 8: {8}, 9: {9}, 10: {10}, 11: {11},
}
