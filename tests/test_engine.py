"""Tests for the BSP cluster engine itself (independent programs)."""

import pytest

from repro.graph.digraph import DiGraph
from repro.graph.partition import ModuloPartitioner, RangePartitioner
from repro.pregel.cost_model import CostModel
from repro.pregel.engine import Cluster, SuperstepLimitExceeded
from repro.pregel.metrics import RunStats
from repro.pregel.vertex_program import VertexProgram


class FloodFrom(VertexProgram):
    """Marks everything reachable from a source; one superstep per hop."""

    def __init__(self, source: int):
        self.source = source
        self.visited: set[int] = set()
        self.visit_superstep: dict[int, int] = {}

    def compute(self, ctx, v, messages):
        if ctx.superstep == 1 and v != self.source:
            return
        if v in self.visited:
            return
        self.visited.add(v)
        self.visit_superstep[v] = ctx.superstep
        for w in ctx.graph.out_neighbors(v):
            ctx.charge()
            ctx.send(w, None)


class MaxPropagation(VertexProgram):
    """Classic Pregel example: propagate the maximum vertex id."""

    def __init__(self):
        self.value: dict[int, int] = {}

    def compute(self, ctx, v, messages):
        if ctx.superstep == 1:
            self.value[v] = v
            changed = True
        else:
            best = max(messages)
            changed = best > self.value[v]
            if changed:
                self.value[v] = best
        if changed:
            for w in ctx.graph.out_neighbors(v):
                ctx.send(w, self.value[v])


class NeverTerminates(VertexProgram):
    def compute(self, ctx, v, messages):
        ctx.send(v, "again")


class FinalizePass(VertexProgram):
    def __init__(self):
        self.finalized = False

    def compute(self, ctx, v, messages):
        return

    def finalize(self, fctx):
        self.finalized = True
        for v in range(fctx.graph.num_vertices):
            fctx.charge(v, 3)


def _path_graph(n: int) -> DiGraph:
    return DiGraph(n, [(i, i + 1) for i in range(n - 1)])


def test_flood_visits_exactly_reachable():
    g = DiGraph(5, [(0, 1), (1, 2), (3, 4)])
    program = FloodFrom(0)
    Cluster(num_nodes=2).run(g, program)
    assert program.visited == {0, 1, 2}


def test_messages_delivered_next_superstep():
    g = _path_graph(5)
    program = FloodFrom(0)
    Cluster(num_nodes=3).run(g, program)
    # Vertex i is at distance i from the source: visited at superstep i+1.
    assert program.visit_superstep == {i: i + 1 for i in range(5)}


def test_max_propagation_converges():
    g = DiGraph(6, [(0, 1), (1, 2), (2, 0), (3, 4), (4, 3), (2, 3)])
    program = MaxPropagation()
    Cluster(num_nodes=4).run(g, program)
    # {0,1,2} feed into {3,4}; 5 is isolated.
    assert program.value == {0: 2, 1: 2, 2: 2, 3: 4, 4: 4, 5: 5}


def test_superstep_limit():
    g = DiGraph(1, [])
    with pytest.raises(SuperstepLimitExceeded):
        Cluster(num_nodes=1).run(g, NeverTerminates(), max_supersteps=10)


def test_local_vs_remote_accounting_exact():
    # Path 0->1->2->3 with a modulo partitioner on 2 nodes:
    # edges 0->1, 1->2, 2->3 all cross parity, hence all remote.
    g = _path_graph(4)
    cluster = Cluster(num_nodes=2, partitioner=ModuloPartitioner(2))
    stats = cluster.run(g, FloodFrom(0))
    assert stats.remote_messages == 3
    assert stats.local_messages == 0
    # Range partitioner keeps 0,1 on node 0 and 2,3 on node 1.
    cluster = Cluster(num_nodes=2, partitioner=RangePartitioner(2, 4))
    stats = cluster.run(g, FloodFrom(0))
    assert stats.remote_messages == 1
    assert stats.local_messages == 2


def test_remote_bytes_follow_message_size():
    g = _path_graph(4)
    cost = CostModel(message_bytes=100)
    cluster = Cluster(
        num_nodes=2, partitioner=ModuloPartitioner(2), cost_model=cost
    )
    stats = cluster.run(g, FloodFrom(0))
    assert stats.remote_bytes == 300


def test_barrier_seconds_per_superstep():
    g = _path_graph(4)
    cost = CostModel(t_barrier=1.0)
    stats = Cluster(num_nodes=1, cost_model=cost).run(g, FloodFrom(0))
    # Path of length 3: 4 visit supersteps + 1 final empty... the last
    # send happens at superstep 4, so superstep 5 delivers to nobody new
    # but vertex 3 sends nothing; termination after superstep 5.
    assert stats.barrier_seconds == stats.supersteps * 1.0
    assert stats.supersteps >= 4


def test_finalize_charged_as_extra_superstep():
    g = _path_graph(3)
    program = FinalizePass()
    stats = Cluster(num_nodes=2).run(g, program)
    assert program.finalized
    assert stats.compute_units == 9  # 3 units per vertex
    assert stats.supersteps == 2  # superstep 1 + finalize pass


def test_stats_accumulate_across_runs():
    g = _path_graph(4)
    cluster = Cluster(num_nodes=2)
    stats = RunStats(num_nodes=2, per_node_units=[0, 0])
    cluster.run(g, FloodFrom(0), stats=stats)
    first_units = stats.compute_units
    cluster.run(g, FloodFrom(0), stats=stats)
    assert stats.compute_units == 2 * first_units


def test_partitioner_node_count_mismatch_rejected():
    with pytest.raises(ValueError):
        Cluster(num_nodes=4, partitioner=ModuloPartitioner(2))
    with pytest.raises(ValueError):
        Cluster(num_nodes=0)


def test_stats_merge():
    a = RunStats(num_nodes=2, per_node_units=[1, 2])
    a.supersteps = 3
    a.compute_units = 3
    b = RunStats(num_nodes=2, per_node_units=[5, 1])
    b.supersteps = 2
    b.compute_units = 6
    a.merge(b)
    assert a.supersteps == 5
    assert a.compute_units == 9
    assert a.per_node_units == [6, 3]


def test_stats_merge_concatenates_traces():
    g = _path_graph(4)
    cluster = Cluster(num_nodes=2)
    first = cluster.run(g, FloodFrom(0), trace=True)
    second = cluster.run(g, FloodFrom(0), trace=True)
    merged = RunStats(num_nodes=2, per_node_units=[0, 0])
    merged.merge(first).merge(second)
    assert len(merged.trace) == len(first.trace) + len(second.trace)
    assert merged.trace == first.trace + second.trace


def test_stats_merge_rejects_node_count_mismatch():
    a = RunStats(num_nodes=2, per_node_units=[1, 2])
    a.supersteps = 1
    b = RunStats(num_nodes=4, per_node_units=[1, 1, 1, 1])
    with pytest.raises(ValueError):
        a.merge(b)


def test_stats_merge_pristine_adopts_node_count():
    accumulator = RunStats()  # default 1-node, nothing recorded yet
    b = RunStats(num_nodes=4, per_node_units=[1, 2, 3, 4])
    b.supersteps = 2
    accumulator.merge(b)
    assert accumulator.num_nodes == 4
    assert accumulator.per_node_units == [1, 2, 3, 4]
    # A second merge with a different node count now fails.
    with pytest.raises(ValueError):
        accumulator.merge(RunStats(num_nodes=2, per_node_units=[1, 1]))


def test_stats_summary_renders():
    stats = RunStats(num_nodes=2, per_node_units=[1, 1])
    text = stats.summary()
    assert "simulated" in text
    assert "2 nodes" in text


def test_superstep_limit_partial_stats_consistent():
    """A tripped limit still leaves coherent partial accounting."""
    g = _path_graph(4)
    stats = RunStats(num_nodes=2)
    stats.per_node_units = [0, 0]
    cluster = Cluster(num_nodes=2, cost_model=CostModel(time_limit_seconds=None))
    with pytest.raises(SuperstepLimitExceeded):
        cluster.run(g, NeverTerminates(), max_supersteps=7, stats=stats,
                    trace=True)
    # Exactly the 7 allowed supersteps were accounted; the 8th aborted
    # before any accounting.
    assert stats.supersteps == 7
    assert len(stats.trace) == 7
    assert [row.superstep for row in stats.trace] == list(range(1, 8))
    assert stats.compute_units == sum(row.compute_units for row in stats.trace)
    assert stats.remote_messages == sum(
        row.remote_messages for row in stats.trace
    )
    assert sum(stats.per_node_units) == stats.compute_units
    assert stats.barrier_seconds == pytest.approx(7 * cluster.cost_model.t_barrier)
    assert stats.simulated_seconds > 0.0
