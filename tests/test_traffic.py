"""Tests for the serving-traffic generators."""

from collections import Counter

import pytest

from repro.workloads.traffic import (
    ZipfSampler,
    phased_arrivals,
    poisson_arrivals,
    sine_arrivals,
    uniform_arrivals,
    zipf_pairs,
)


def test_zipf_sampler_is_deterministic():
    a = [ZipfSampler(100, seed=3).sample() for _ in range(50)]
    b = [ZipfSampler(100, seed=3).sample() for _ in range(50)]
    c = [ZipfSampler(100, seed=4).sample() for _ in range(50)]
    assert a == b
    assert a != c


def test_zipf_sampler_stays_in_range():
    sampler = ZipfSampler(10, skew=2.0, seed=0)
    samples = [sampler.sample() for _ in range(1000)]
    assert all(0 <= s < 10 for s in samples)


def test_zipf_skew_concentrates_traffic():
    def top_share(skew):
        sampler = ZipfSampler(1000, skew=skew, seed=1)
        counts = Counter(sampler.sample() for _ in range(5000))
        return sum(c for _, c in counts.most_common(10)) / 5000

    # Higher skew → the ten hottest items take a larger share; skew 0
    # is uniform, where 10/1000 items get ~1% of traffic.
    assert top_share(0.0) < 0.05
    assert top_share(1.1) > top_share(0.0)
    assert top_share(2.0) > 0.5


def test_zipf_hot_items_are_scattered_not_clustered():
    # The seeded permutation must not leave rank 0 at item 0.
    hot = [ZipfSampler(1000, skew=3.0, seed=s).sample() for s in range(20)]
    assert len(set(hot)) > 1


def test_zipf_sampler_validation():
    with pytest.raises(ValueError):
        ZipfSampler(0)
    with pytest.raises(ValueError):
        ZipfSampler(10, skew=-1.0)


def test_zipf_pairs_shape_and_determinism():
    pairs = zipf_pairs(50, 200, seed=9)
    assert len(pairs) == 200
    assert pairs == zipf_pairs(50, 200, seed=9)
    assert all(0 <= s < 50 and 0 <= t < 50 for s, t in pairs)
    # Sources and targets are independently permuted: the hottest
    # source is not forced to equal the hottest target.
    sources = Counter(s for s, _ in pairs)
    targets = Counter(t for _, t in pairs)
    assert sources.most_common(1)[0][1] > 1  # there IS a hot source
    assert targets.most_common(1)[0][1] > 1


def test_poisson_arrivals_monotone_and_rate():
    arrivals = poisson_arrivals(10000, rate=100.0, seed=2)
    assert len(arrivals) == 10000
    assert all(b >= a for a, b in zip(arrivals, arrivals[1:]))
    # Mean inter-arrival ≈ 1/rate (law of large numbers, ±20%).
    assert arrivals[-1] / 10000 == pytest.approx(0.01, rel=0.2)
    assert arrivals == poisson_arrivals(10000, rate=100.0, seed=2)


def test_uniform_arrivals_evenly_spaced():
    arrivals = uniform_arrivals(5, rate=10.0)
    assert arrivals == pytest.approx([0.1, 0.2, 0.3, 0.4, 0.5])


def test_arrival_rate_validation():
    with pytest.raises(ValueError):
        poisson_arrivals(10, rate=0.0)
    with pytest.raises(ValueError):
        uniform_arrivals(10, rate=-1.0)


# -- scenario traffic shapes -------------------------------------------

def test_phased_arrivals_continue_the_clock():
    arrivals = phased_arrivals([(100, 1e5), (300, 1e6), (100, 1e5)], seed=1)
    assert len(arrivals) == 500
    assert arrivals == sorted(arrivals)
    assert arrivals == phased_arrivals(
        [(100, 1e5), (300, 1e6), (100, 1e5)], seed=1
    )
    # The spike phase is denser than the shoulders.
    shoulder = arrivals[99] - arrivals[0]
    spike = arrivals[399] - arrivals[100]
    assert spike / 299 < shoulder / 99


def test_phased_arrivals_validation():
    with pytest.raises(ValueError, match="at least one phase"):
        phased_arrivals([])
    with pytest.raises(ValueError, match="rate must be positive"):
        phased_arrivals([(10, 0.0)])
    with pytest.raises(ValueError, match="count must be non-negative"):
        phased_arrivals([(-1, 1e5)])


def test_sine_arrivals_oscillate_around_base_rate():
    period = 0.01
    arrivals = sine_arrivals(4000, 1e6, amplitude=0.8,
                             period_seconds=period, seed=2)
    assert len(arrivals) == 4000
    assert arrivals == sorted(arrivals)
    assert arrivals == sine_arrivals(4000, 1e6, amplitude=0.8,
                                     period_seconds=period, seed=2)
    # Bucket arrivals by phase within the period: the crest
    # (first half-period) must out-draw the trough (second half).
    crest = sum(1 for t in arrivals if (t % period) < period / 2)
    trough = len(arrivals) - crest
    assert crest > 1.2 * trough


def test_sine_arrivals_validation():
    with pytest.raises(ValueError, match="base_rate"):
        sine_arrivals(10, 0.0)
    with pytest.raises(ValueError, match="amplitude"):
        sine_arrivals(10, 1e5, amplitude=1.0)
    with pytest.raises(ValueError, match="period"):
        sine_arrivals(10, 1e5, period_seconds=0.0)
