"""Tests for the IP (min-hash) and chain-TC related-work baselines."""

import pytest
from hypothesis import given, settings

from repro.baselines.chain_tc import build_chain_tc
from repro.baselines.ip_label import build_ip
from repro.baselines.transitive_closure import TransitiveClosure
from repro.errors import OutOfMemoryError
from repro.graph.digraph import DiGraph
from repro.graph.generators import citation_graph, social_graph
from repro.pregel.cost_model import CostModel
from repro.pregel.serial import SerialMeter
from tests.conftest import digraphs


# ----------------------------------------------------------------------
# IP labeling
# ----------------------------------------------------------------------
@settings(max_examples=50, deadline=None)
@given(digraphs())
def test_property_ip_always_correct(g):
    oracle = TransitiveClosure(g)
    ip = build_ip(g, k=4, seed=3)
    for s in range(g.num_vertices):
        for t in range(g.num_vertices):
            assert ip.query(s, t) == oracle.query(s, t), (s, t)


@settings(max_examples=25, deadline=None)
@given(digraphs())
def test_property_ip_label_only_answers_sound(g):
    oracle = TransitiveClosure(g)
    ip = build_ip(g, k=3, seed=4)
    for s in range(g.num_vertices):
        for t in range(g.num_vertices):
            answer, fallback = ip.query_verbose(s, t)
            if not fallback:
                assert answer == oracle.query(s, t)


def test_ip_small_k_still_correct():
    g = social_graph(300, seed=5)
    oracle = TransitiveClosure(g)
    ip = build_ip(g, k=1, num_permutations=1)
    for s in range(0, 300, 17):
        for t in range(0, 300, 19):
            assert ip.query(s, t) == oracle.query(s, t)


def test_ip_complete_sketches_answer_positively():
    # A short path: every reachable set has < k members, so the exact
    # subset test answers without touching the graph.
    g = DiGraph(3, [(0, 1), (1, 2)])
    ip = build_ip(g, k=8)
    answer, fallback = ip.query_verbose(0, 2)
    assert answer and not fallback


def test_ip_parameters_and_size():
    g = citation_graph(200, seed=6)
    small = build_ip(g, k=2, num_permutations=1)
    large = build_ip(g, k=16, num_permutations=3)
    assert large.size_bytes() > small.size_bytes()
    assert large.num_permutations == 3
    with pytest.raises(ValueError):
        build_ip(g, k=0)
    with pytest.raises(ValueError):
        build_ip(g, num_permutations=0)


def test_ip_meter_and_memory_gate():
    g = social_graph(200, seed=7)
    meter = SerialMeter(CostModel(time_limit_seconds=None))
    build_ip(g, meter=meter)
    assert meter.units > g.num_vertices
    with pytest.raises(OutOfMemoryError):
        build_ip(g, meter=SerialMeter(CostModel(node_memory_bytes=64)))


# ----------------------------------------------------------------------
# Chain-compressed transitive closure
# ----------------------------------------------------------------------
@settings(max_examples=50, deadline=None)
@given(digraphs())
def test_property_chain_tc_exact(g):
    oracle = TransitiveClosure(g)
    index = build_chain_tc(g)
    for s in range(g.num_vertices):
        for t in range(g.num_vertices):
            assert index.query(s, t) == oracle.query(s, t), (s, t)


def test_chain_tc_on_path_uses_one_chain():
    g = DiGraph(5, [(i, i + 1) for i in range(4)])
    index = build_chain_tc(g)
    assert index.num_chains == 1
    assert index.query(0, 4)
    assert not index.query(4, 0)


def test_chain_tc_on_antichain_uses_n_chains():
    g = DiGraph(4, [])
    index = build_chain_tc(g)
    assert index.num_chains == 4


def test_chain_tc_handles_cycles_via_condensation():
    g = DiGraph(4, [(0, 1), (1, 0), (1, 2), (2, 3), (3, 2)])
    index = build_chain_tc(g)
    assert index.query(0, 3)
    assert index.query(3, 2)
    assert not index.query(2, 0)


def test_chain_tc_meter_and_memory_gate():
    g = social_graph(300, seed=8)
    meter = SerialMeter(CostModel(time_limit_seconds=None))
    index = build_chain_tc(g, meter=meter)
    assert meter.units > 0
    assert index.size_bytes() > 0
    with pytest.raises(OutOfMemoryError):
        build_chain_tc(g, meter=SerialMeter(CostModel(node_memory_bytes=256)))


def test_chain_tc_size_grows_with_width():
    deep = DiGraph(60, [(i, i + 1) for i in range(59)])
    wide = DiGraph(60, [])
    assert build_chain_tc(wide).size_bytes() > build_chain_tc(deep).size_bytes()
