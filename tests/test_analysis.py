"""Tests for structural analysis helpers."""

from hypothesis import given, settings

from repro.graph.analysis import bowtie_decomposition, degree_summary
from repro.graph.digraph import DiGraph
from repro.graph.generators import web_graph
from tests.conftest import digraphs


def test_bowtie_textbook_shape():
    # in: 0 -> core {1, 2} -> out: 3; isolated: 4
    g = DiGraph(5, [(0, 1), (1, 2), (2, 1), (2, 3)])
    tie = bowtie_decomposition(g)
    assert tie.core == {1, 2}
    assert tie.in_set == {0}
    assert tie.out_set == {3}
    assert tie.others == {4}
    assert "core 2" in tie.summary()


def test_bowtie_empty_graph():
    tie = bowtie_decomposition(DiGraph(0, []))
    assert not tie.core and not tie.others
    assert tie.summary().startswith("core 0")


def test_bowtie_all_core():
    g = DiGraph(3, [(0, 1), (1, 2), (2, 0)])
    tie = bowtie_decomposition(g)
    assert tie.core == {0, 1, 2}
    assert not tie.in_set and not tie.out_set and not tie.others


def test_bowtie_tendril_is_other():
    # in-tendril hanging off the IN set: 5 -> 0 -> core; 5 not counted
    # as IN? 5 reaches the core through 0, so 5 is IN; a true OTHER
    # hangs off OUT without reaching back: 3 -> 4 where 3 is OUT.
    g = DiGraph(6, [(0, 1), (1, 2), (2, 1), (2, 3), (5, 0), (3, 4)])
    tie = bowtie_decomposition(g)
    assert 5 in tie.in_set
    assert 4 in tie.out_set  # reachable from the core via 3
    assert not tie.others


def test_web_graph_has_substantial_core():
    g = web_graph(600, seed=3)
    tie = bowtie_decomposition(g)
    assert len(tie.core) > 3


@settings(max_examples=40, deadline=None)
@given(digraphs())
def test_property_bowtie_partitions_vertices(g):
    tie = bowtie_decomposition(g)
    if g.num_vertices == 0:
        return
    parts = [tie.core, tie.in_set, tie.out_set, tie.others]
    union = set().union(*parts)
    assert union == set(g.vertices())
    assert sum(len(p) for p in parts) == g.num_vertices  # disjoint
    # IN members reach the core; OUT members are reached from it.
    from repro.graph.traversal import reachable_set

    if tie.core:
        pivot = next(iter(tie.core))
        core_reach = reachable_set(g, pivot)
        for v in tie.out_set:
            assert v in core_reach


def test_degree_summary():
    g = DiGraph(4, [(0, 1), (2, 1), (3, 1), (1, 0)])
    stats = degree_summary(g)
    assert stats["max_in"] == 3
    assert stats["max_out"] == 1
    assert stats["mean_degree"] == 1.0
    assert 0 < stats["top1_in_share"] <= 1.0


def test_degree_summary_empty():
    stats = degree_summary(DiGraph(0, []))
    assert stats["mean_degree"] == 0.0
