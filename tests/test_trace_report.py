"""Tests for the JSONL trace summarizer behind ``repro trace``."""

import pytest

from repro import telemetry
from repro.bench.harness import run_fig5_comm_comp
from repro.telemetry import session, trace_span
from repro.telemetry.report import (
    TraceReadError,
    bench_cell_tables,
    metrics_lines,
    read_trace,
    summarize_trace,
    superstep_table,
    top_spans_section,
)
from repro.telemetry.sinks import JsonlSink


def _write_trace(tmp_path, body):
    path = tmp_path / "trace.jsonl"
    with session([JsonlSink(path)]):
        body()
    return path


def test_read_trace_roundtrip(tmp_path):
    def body():
        with trace_span("a", dataset="GO"):
            telemetry.trace_event("tick", n=1)

    records = read_trace(_write_trace(tmp_path, body))
    assert [r["kind"] for r in records] == ["event", "span"]


def test_read_trace_skips_garbage_lines(tmp_path):
    """Malformed lines are tolerated and counted, not fatal."""
    bad = tmp_path / "bad.jsonl"
    bad.write_text('{"kind":"span","name":"x"}\nnot json\n{"no_kind": true}\n')
    records = read_trace(bad)
    assert [r["name"] for r in records] == ["x"]
    assert len(records.skipped) == 2
    assert "bad.jsonl:2" in records.skipped[0]
    assert "bad.jsonl:3" in records.skipped[1]


def test_read_trace_rejects_file_with_no_valid_records(tmp_path):
    """All-garbage means 'not a trace file', which is still an error."""
    bad = tmp_path / "bad.jsonl"
    bad.write_text('not json\n{"no_kind": true}\n')
    with pytest.raises(TraceReadError):
        read_trace(bad)


def test_read_trace_truncated_export_still_summarizes(tmp_path):
    """A trace cut off mid-line (killed run) loses only the tail."""
    def body():
        with trace_span("a") as span:
            span.add_simulated(1.0)
        with trace_span("b") as span:
            span.add_simulated(2.0)

    path = _write_trace(tmp_path, body)
    full = path.read_bytes()
    truncated = tmp_path / "truncated.jsonl"
    truncated.write_bytes(full[: len(full) - 25])
    records = read_trace(truncated)
    assert len(records.skipped) == 1
    assert len(records) >= 1
    assert "Top spans by simulated time" in summarize_trace(records)


def test_top_spans_ranked_by_simulated_time(tmp_path):
    def body():
        with trace_span("slow") as span:
            span.add_simulated(2.0)
        with trace_span("fast") as span:
            span.add_simulated(0.5)

    section = top_spans_section(read_trace(_write_trace(tmp_path, body)))
    lines = section.splitlines()
    assert lines[0] == "Top spans by simulated time"
    slow_line = next(i for i, l in enumerate(lines) if l.startswith("slow"))
    fast_line = next(i for i, l in enumerate(lines) if l.startswith("fast"))
    assert slow_line < fast_line


def test_superstep_table_absent_without_events():
    assert superstep_table([]) is None


def test_metrics_lines_render_histograms(tmp_path):
    def body():
        registry = telemetry.current_metrics()
        registry.counter("queries").inc(3)
        hist = registry.histogram("lat")
        hist.observe(2e-7)
        hist.observe(3e-6)

    lines = metrics_lines(read_trace(_write_trace(tmp_path, body)))
    assert any(l.startswith("queries: 3") for l in lines)
    latency = next(l for l in lines if l.startswith("lat:"))
    assert "count=2" in latency and "p95=" in latency


def test_fig5_table_reproducible_from_trace_alone(tmp_path):
    """The acceptance check: the exported spans carry enough to rebuild
    the experiment's comp/comm table, cell for cell."""
    path = tmp_path / "fig5.jsonl"
    with session([JsonlSink(path)]):
        rendered = run_fig5_comm_comp(dataset_names=["GO"])
    tables = bench_cell_tables(read_trace(path))
    fig5 = next(t for t in tables if "fig5" in t.title)
    assert fig5.rows == rendered.rows
    for column in rendered.columns:
        assert column in fig5.columns
        for row in rendered.rows:
            expected = rendered.get(row, column)
            actual = fig5.get(row, column)
            if expected.ok:
                assert actual.value == pytest.approx(expected.value)
            else:
                assert actual.marker == expected.marker


def test_summarize_trace_has_all_sections(tmp_path):
    path = tmp_path / "full.jsonl"
    with session([JsonlSink(path)]):
        run_fig5_comm_comp(dataset_names=["GO"])
    text = summarize_trace(read_trace(path))
    assert "Top spans by simulated time" in text
    assert "Experiment fig5" in text
    assert "Super-steps of the longest run" in text
    assert "Metrics" in text
    assert "pregel.supersteps" in text
