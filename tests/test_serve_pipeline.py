"""Tests for the request pipeline: admission, batching, deadlines."""

import pytest

from repro.baselines.transitive_closure import TransitiveClosure
from repro.core.build import build_index
from repro.graph.generators import social_graph
from repro.pregel.cost_model import CostModel
from repro.errors import ShardUnavailableError
from repro.query import FallbackBackend
from repro.serve import (
    CachingBackend,
    QueryCache,
    QueryServer,
    ShardedIndexBackend,
    ShardedLabelStore,
)
from repro.telemetry import MetricsRegistry, current_metrics, session
from repro.workloads.queries import random_pairs
from repro.workloads.traffic import poisson_arrivals, uniform_arrivals, zipf_pairs

_NO_LIMIT = CostModel(time_limit_seconds=None)


@pytest.fixture(scope="module")
def graph():
    return social_graph(200, seed=8)


@pytest.fixture(scope="module")
def backend(graph):
    index = build_index(graph, cost_model=_NO_LIMIT).index
    store = ShardedLabelStore(index, num_shards=4, cost_model=_NO_LIMIT)
    return ShardedIndexBackend(store)


class _SlowBackend:
    """Deterministic backend: every query takes ``seconds``."""

    def __init__(self, seconds):
        self.seconds = seconds

    def query_with_cost(self, s, t):
        return False, self.seconds


def test_open_loop_serves_everything_when_unloaded(graph, backend):
    pairs = random_pairs(graph.num_vertices, 500, seed=0)
    arrivals = uniform_arrivals(500, rate=1000.0)  # far below capacity
    report = QueryServer(backend, cost_model=_NO_LIMIT).run_open(pairs, arrivals)
    assert report.mode == "open"
    assert report.served == report.offered == 500
    assert report.shed == 0 and report.deadline_dropped == 0
    assert report.throughput > 0
    assert report.p50_seconds <= report.p99_seconds <= report.p999_seconds
    assert report.p999_seconds <= report.max_seconds
    assert report.shard_loads and report.shard_skew >= 1.0


def test_overload_sheds_and_terminates():
    # 1s per query, all 1000 requests arrive at t=0, queue holds 10:
    # the first 10 are admitted, everything else is shed — and the loop
    # must terminate (this is the "no deadlock" half of the property).
    server = QueryServer(
        _SlowBackend(1.0), queue_depth=10, batch_size=4, cost_model=_NO_LIMIT
    )
    pairs = [(0, 1)] * 1000
    report = server.run_open(pairs, [0.0] * 1000)
    assert report.shed > 0
    assert report.served + report.shed + report.deadline_dropped == report.offered
    assert report.queue_peak <= 10
    assert report.served == 10  # queue capacity admitted exactly once


def test_shed_count_scales_with_queue_depth():
    pairs = [(0, 1)] * 200
    arrivals = [0.0] * 200
    small = QueryServer(
        _SlowBackend(1.0), queue_depth=5, batch_size=4, cost_model=_NO_LIMIT
    ).run_open(pairs, arrivals)
    large = QueryServer(
        _SlowBackend(1.0), queue_depth=100, batch_size=4, cost_model=_NO_LIMIT
    ).run_open(pairs, arrivals)
    assert small.shed > large.shed
    assert small.served < large.served


def test_deadline_drops_late_requests():
    # Everything arrives at once; by the time the tail of the queue is
    # dequeued it has waited > deadline and is dropped, not served.
    server = QueryServer(
        _SlowBackend(1.0),
        queue_depth=100,
        batch_size=1,
        deadline_seconds=2.5,
        cost_model=_NO_LIMIT,
    )
    report = server.run_open([(0, 1)] * 50, [0.0] * 50)
    assert report.deadline_dropped > 0
    assert report.served + report.shed + report.deadline_dropped == report.offered
    assert report.max_seconds <= 2.5 + 1.0  # waited ≤ deadline, then 1s service


def test_arrival_validation():
    server = QueryServer(_SlowBackend(1.0), cost_model=_NO_LIMIT)
    with pytest.raises(ValueError, match="one arrival time per pair"):
        server.run_open([(0, 1)], [0.0, 1.0])
    with pytest.raises(ValueError, match="non-decreasing"):
        server.run_open([(0, 1), (1, 2)], [1.0, 0.0])


def test_constructor_validation(backend):
    with pytest.raises(ValueError):
        QueryServer(backend, queue_depth=0)
    with pytest.raises(ValueError):
        QueryServer(backend, batch_size=0)
    with pytest.raises(ValueError):
        QueryServer(backend, deadline_seconds=0.0)
    with pytest.raises(ValueError):
        QueryServer(backend).run_closed([(0, 1)], clients=0)
    with pytest.raises(ValueError):
        QueryServer(backend).run_closed([(0, 1)], think_seconds=-1.0)


def test_closed_loop_never_sheds(graph, backend):
    pairs = random_pairs(graph.num_vertices, 400, seed=2)
    server = QueryServer(backend, queue_depth=8, batch_size=4, cost_model=_NO_LIMIT)
    report = server.run_closed(pairs, clients=8)
    assert report.mode == "closed"
    assert report.served == report.offered == 400
    assert report.shed == 0
    assert report.queue_peak <= 8  # in-flight population bounded by clients


def test_closed_loop_think_time_stretches_makespan(graph, backend):
    pairs = random_pairs(graph.num_vertices, 200, seed=3)
    fast = QueryServer(backend, cost_model=_NO_LIMIT).run_closed(pairs, clients=4)
    slow = QueryServer(backend, cost_model=_NO_LIMIT).run_closed(
        pairs, clients=4, think_seconds=1e-3
    )
    assert slow.makespan_seconds > fast.makespan_seconds
    assert slow.throughput < fast.throughput


def test_batching_amortizes_dispatch():
    # Same workload, same backend: bigger batches → fewer dispatches →
    # a shorter makespan (dispatch cost is paid per batch).
    pairs = [(0, 1)] * 256
    arrivals = [0.0] * 256
    unbatched = QueryServer(
        _SlowBackend(1e-6), queue_depth=256, batch_size=1, cost_model=_NO_LIMIT
    ).run_open(pairs, arrivals)
    batched = QueryServer(
        _SlowBackend(1e-6), queue_depth=256, batch_size=64, cost_model=_NO_LIMIT
    ).run_open(pairs, arrivals)
    assert unbatched.batches == 256
    assert batched.batches == 4
    assert batched.makespan_seconds < unbatched.makespan_seconds


def test_report_includes_cache_and_degradation(graph):
    # Degraded FallbackBackend under a cache: the report surfaces both.
    fallback = FallbackBackend(None, graph, _NO_LIMIT)
    assert fallback.degraded
    backend = CachingBackend(fallback, QueryCache(), cost_model=_NO_LIMIT)
    pairs = zipf_pairs(graph.num_vertices, 300, seed=5)
    report = QueryServer(backend, cost_model=_NO_LIMIT).run_open(
        pairs, poisson_arrivals(300, rate=1000.0, seed=5)
    )
    assert report.degraded
    assert report.fallback_queries > 0
    assert report.cache_hits > 0
    assert 0.0 < report.cache_hit_rate < 1.0
    assert "DEGRADED" in report.summary()
    oracle = TransitiveClosure(graph)
    # Spot-check: degraded serving still answers correctly.
    s, t = pairs[0]
    assert backend.query_with_cost(s, t)[0] == oracle.query(s, t)


def test_summary_mentions_key_numbers(graph, backend):
    pairs = random_pairs(graph.num_vertices, 100, seed=6)
    report = QueryServer(backend, cost_model=_NO_LIMIT).run_open(
        pairs, uniform_arrivals(100, rate=1000.0)
    )
    text = report.summary()
    assert "100 offered" in text
    assert "p99" in text and "throughput" in text
    assert "load skew" in text


def test_serve_metrics_recorded_via_explicit_registry(graph, backend):
    registry = MetricsRegistry()
    pairs = random_pairs(graph.num_vertices, 120, seed=7)
    server = QueryServer(backend, metrics=registry, cost_model=_NO_LIMIT)
    report = server.run_open(pairs, uniform_arrivals(120, rate=1000.0))
    assert registry.counter("serve.requests").value == 120
    assert registry.counter("serve.served").value == report.served
    assert registry.counter("serve.shed").value == report.shed
    assert registry.gauge("serve.queue_peak").value == report.queue_peak
    assert registry.histogram("serve.latency_seconds").count == report.served
    assert registry.gauge("serve.shard_skew").value == pytest.approx(report.shard_skew)
    assert registry.gauge("serve.degraded").value == 0
    assert registry.counter("serve.batches").value == report.batches


def test_serve_metrics_recorded_under_telemetry_session(graph, backend):
    pairs = random_pairs(graph.num_vertices, 80, seed=9)
    with session():
        QueryServer(backend, cost_model=_NO_LIMIT).run_open(
            pairs, uniform_arrivals(80, rate=1000.0)
        )
        registry = current_metrics()
        assert "serve.requests" in registry
        assert "serve.served" in registry
        assert "serve.latency_seconds" in registry
    # Outside the session, nothing leaks into the global registry.
    assert "serve.requests" not in current_metrics()


# -- replica-aware serving ---------------------------------------------

class _FlakyBackend:
    """Fails every ``nth`` query with ShardUnavailableError."""

    def __init__(self, nth=3, seconds=1e-5):
        self.nth = nth
        self.seconds = seconds
        self.calls = 0

    def query_with_cost(self, s, t):
        self.calls += 1
        if self.calls % self.nth == 0:
            error = ShardUnavailableError(0, 2)
            error.seconds = self.seconds
            raise error
        return False, self.seconds


def test_unavailable_shards_count_as_failed_not_served():
    server = QueryServer(_FlakyBackend(nth=3), cost_model=_NO_LIMIT)
    report = server.run_open([(0, 1)] * 30, uniform_arrivals(30, rate=100.0))
    assert report.failed == 10
    assert report.served == 20
    assert report.served + report.shed + report.deadline_dropped \
        + report.failed == report.offered
    assert report.availability == pytest.approx(20 / 30)
    assert f"{report.failed} failed" in report.summary()


def test_availability_is_one_when_nothing_fails(graph, backend):
    pairs = random_pairs(graph.num_vertices, 50, seed=2)
    report = QueryServer(backend, cost_model=_NO_LIMIT).run_open(
        pairs, uniform_arrivals(50, rate=1000.0)
    )
    assert report.failed == 0
    assert report.availability == 1.0


def test_on_advance_hook_sees_a_monotone_clock(graph, backend):
    clocks = []
    server = QueryServer(
        backend, cost_model=_NO_LIMIT, batch_size=8,
        on_advance=clocks.append,
    )
    pairs = random_pairs(graph.num_vertices, 100, seed=3)
    report = server.run_open(pairs, uniform_arrivals(100, rate=100000.0))
    assert report.served == 100
    assert clocks, "the hook must fire at least once per batch"
    assert clocks == sorted(clocks)
    assert len(clocks) == report.batches


def test_replicated_store_drives_end_to_end_failover(graph):
    # A full pipeline run over the replicated store: crash the primary
    # of every shard mid-run via the fault injector and require that
    # the run stays correct and the failovers land in the report.
    from repro.baselines.transitive_closure import TransitiveClosure
    from repro.serve import (
        HealthPolicy,
        ReplicatedLabelStore,
        ServeFaultInjector,
        ServeFaultPlan,
    )

    index = build_index(graph, cost_model=_NO_LIMIT).index
    store = ReplicatedLabelStore(
        index, num_shards=2, cost_model=_NO_LIMIT, replicas=2,
        health=HealthPolicy(failure_threshold=2),
    )
    plan = ServeFaultPlan.parse("crash=0.0@0.0002,crash=1.0@0.0002")
    injector = ServeFaultInjector(plan, store)
    server = QueryServer(
        ShardedIndexBackend(store), cost_model=_NO_LIMIT,
        on_advance=injector.advance,
    )
    pairs = random_pairs(graph.num_vertices, 400, seed=5)
    arrivals = uniform_arrivals(400, rate=400000.0)
    report = server.run_open(pairs, arrivals)
    assert report.failovers == 2
    assert report.replicas_down == 2
    assert report.failed == 0  # the surviving replicas absorbed it all
    oracle = TransitiveClosure(graph)
    # Spot-check: the store still answers correctly post-failover.
    for s, t in pairs[:50]:
        assert store.fetch(s, t)[0] == oracle.query(s, t)
    assert "failover" in report.summary()
