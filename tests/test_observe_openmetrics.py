"""Golden-file test for ``repro top --openmetrics``.

The exposition is deterministic for a given trace — fixed family
order, ``repr`` floats — so the whole output is pinned byte for byte.
To regenerate after an intentional format change::

    PYTHONPATH=src python tests/test_observe_openmetrics.py
"""

from __future__ import annotations

from pathlib import Path

from repro.observe.dashboard import DashboardModel
from repro.observe.openmetrics import render_openmetrics

GOLDEN = Path(__file__).parent / "data" / "top.openmetrics"


def _synthetic_records() -> list[dict]:
    """A tiny hand-built trace exercising every exported family."""

    def request(trace_id, outcome, latency, stages):
        return {
            "kind": "event",
            "name": "serve.request",
            "attrs": {
                "trace_id": trace_id,
                "outcome": outcome,
                "arrival": 0.0,
                "latency_seconds": latency,
                "stages": stages,
            },
        }

    return [
        request("t-1", "served", 2e-6, [
            {"stage": "admission"},
            {"stage": "cache", "hit": False},
            {"stage": "store", "home": 0, "lag": 3},
            {"stage": "confirm", "ops": 3},
            {"stage": "backend", "answer": True},
        ]),
        request("t-2", "served", 5e-7, [
            {"stage": "admission"},
            {"stage": "cache", "hit": True},
            {"stage": "backend", "answer": False},
        ]),
        request("t-3", "served", 8e-6, [
            {"stage": "admission"},
            {"stage": "cache", "hit": False},
            {"stage": "store", "home": 1, "remote": 0, "lag": 2},
            {"stage": "backend", "answer": True},
        ]),
        request("t-4", "served", 1e-6, [
            {"stage": "admission"},
            {"stage": "cache", "hit": False},
            {"stage": "store", "home": 1, "hedge_won": True},
            {"stage": "backend", "answer": False},
        ]),
        request("t-5", "served", 3e-6, [
            {"stage": "admission"},
            {"stage": "cache", "hit": False},
            {"stage": "store", "home": 0, "lag": 5},
            {"stage": "catchup", "ops": 5},
            {"stage": "backend", "answer": True},
        ]),
        request("t-6", "shed", 0.0, []),
        request("t-7", "deadline", 0.0, []),
        request("t-8", "error", 0.0, []),
        {"kind": "event", "name": "serve.failover",
         "attrs": {"shard": 0, "from_replica": 0, "to_replica": 1}},
        {"kind": "event", "name": "replica.lag",
         "attrs": {"lag": 5, "groups": {"1": 5}, "version": 5}},
    ]


def _model() -> DashboardModel:
    incidents = [{"id": "incident-001-failover", "kind": "failover",
                  "at": 1e-5}]
    return DashboardModel.from_records(_synthetic_records(),
                                       incidents=incidents)


def test_openmetrics_matches_golden_file():
    assert render_openmetrics(_model()) == GOLDEN.read_text(encoding="utf-8")


def test_openmetrics_is_well_formed():
    text = render_openmetrics(_model())
    lines = text.splitlines()
    assert lines[-1] == "# EOF"
    assert text.endswith("# EOF\n")
    # Every sample line belongs to a declared family.
    declared = {line.split()[2] for line in lines if line.startswith("# TYPE")}
    for line in lines:
        if line.startswith("#"):
            continue
        name = line.split("{")[0].split()[0]
        base = name
        for suffix in ("_total", "_bucket", "_count", "_sum"):
            if name.endswith(suffix):
                base = name[: -len(suffix)]
                break
        assert base in declared, line

    # The histogram is cumulative and consistent with its count.
    buckets = [
        int(line.split()[-1])
        for line in lines
        if line.startswith("repro_serve_latency_seconds_bucket")
    ]
    assert buckets == sorted(buckets)
    count = next(
        int(line.split()[-1])
        for line in lines
        if line.startswith("repro_serve_latency_seconds_count")
    )
    assert buckets[-1] == count == 5


def test_openmetrics_counts_reflect_the_trace():
    text = render_openmetrics(_model())
    expected = {
        "repro_serve_requests_total 8",
        "repro_serve_served_total 5",
        "repro_serve_shed_total 1",
        "repro_serve_deadline_dropped_total 1",
        "repro_serve_failed_total 1",
        "repro_serve_failovers_total 1",
        "repro_serve_positives_total 3",
        "repro_serve_cache_hits_total 1",
        "repro_serve_cache_misses_total 4",
        "repro_serve_store_fetches_total 4",
        "repro_serve_remote_fetches_total 1",
        "repro_serve_confirmed_reads_total 1",
        "repro_serve_stale_reads_total 1",
        "repro_serve_forced_catchups_total 1",
        "repro_serve_hedges_won_total 1",
        "repro_serve_replication_lag_peak 5",
        "repro_serve_open_incidents 1",
    }
    lines = set(text.splitlines())
    missing = expected - lines
    assert not missing, f"missing samples: {sorted(missing)}"


if __name__ == "__main__":  # pragma: no cover — golden regeneration
    GOLDEN.parent.mkdir(parents=True, exist_ok=True)
    GOLDEN.write_text(render_openmetrics(_model()), encoding="utf-8")
    print(f"wrote {GOLDEN}")
