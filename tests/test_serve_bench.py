"""Tests for the serve-bench runner and its CLI subcommand."""

import json

import pytest

from repro.cli import main
from repro.graph.generators import social_graph
from repro.pregel.cost_model import CostModel
from repro.serve import COLUMNS, caching_speedup, run_serve_bench

_NO_LIMIT = CostModel(time_limit_seconds=None)


@pytest.fixture(scope="module")
def graph():
    return social_graph(400, seed=6)


def test_run_serve_bench_table_shape(graph):
    table, reports = run_serve_bench(
        graph, shards=4, requests=2000, cost_model=_NO_LIMIT
    )
    assert set(reports) == {"cached", "uncached"}
    for row in ("cached", "uncached"):
        for column in COLUMNS:
            assert table.get(row, column) is not None
    assert reports["cached"].cache_hits > 0
    assert reports["uncached"].cache_hits == 0
    assert "serve-bench" in table.title


def test_run_serve_bench_is_deterministic(graph):
    kwargs = dict(shards=4, requests=1500, cost_model=_NO_LIMIT)
    table_a, _ = run_serve_bench(graph, **kwargs)
    table_b, _ = run_serve_bench(graph, **kwargs)
    for row in ("cached", "uncached"):
        for column in COLUMNS:
            assert table_a.get(row, column) == table_b.get(row, column)


def test_caching_beats_uncached_under_saturation(graph):
    _, reports = run_serve_bench(
        graph, shards=4, requests=4000, rate=2_000_000.0, zipf=1.4,
        cost_model=_NO_LIMIT,
    )
    speedup = caching_speedup(reports)
    assert speedup is not None and speedup > 1.0


def test_caching_speedup_requires_both_rows(graph):
    _, reports = run_serve_bench(
        graph, shards=2, requests=500, without_cache=False,
        cost_model=_NO_LIMIT,
    )
    assert set(reports) == {"cached"}
    assert caching_speedup(reports) is None


def test_closed_arrival_mode(graph):
    _, reports = run_serve_bench(
        graph, shards=2, requests=800, arrival="closed", clients=8,
        without_cache=False, cost_model=_NO_LIMIT,
    )
    report = reports["cached"]
    assert report.mode == "closed"
    assert report.shed == 0 and report.served == 800


def test_invalid_options_rejected(graph):
    with pytest.raises(ValueError, match="partitioner"):
        run_serve_bench(graph, partitioner="voronoi", cost_model=_NO_LIMIT)
    with pytest.raises(ValueError, match="arrival"):
        run_serve_bench(graph, arrival="bursty", cost_model=_NO_LIMIT)


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def test_cli_serve_bench_generated_graph(capsys):
    assert main(["serve-bench", "--vertices", "300", "--requests", "2000",
                 "--shards", "4"]) == 0
    out = capsys.readouterr().out
    assert "[cached]" in out and "[uncached]" in out
    assert "throughput" in out and "p99" in out
    assert "hit rate" in out and "load skew" in out
    assert "caching speedup" in out


def test_cli_serve_bench_on_edge_list_file(tmp_path, capsys):
    path = tmp_path / "g.txt"
    assert main(["generate", str(path), "--kind", "social",
                 "--vertices", "200", "--seed", "3"]) == 0
    assert main(["serve-bench", str(path), "--requests", "1000",
                 "--shards", "2", "--arrival", "uniform"]) == 0
    assert "uniform workload" in capsys.readouterr().out


def test_cli_serve_bench_cache_only_and_no_cache(capsys):
    assert main(["serve-bench", "--vertices", "150", "--requests", "500",
                 "--cache-only"]) == 0
    out = capsys.readouterr().out
    assert "[cached]" in out and "[uncached]" not in out
    assert "caching speedup" not in out  # needs both rows
    assert main(["serve-bench", "--vertices", "150", "--requests", "500",
                 "--no-cache"]) == 0
    out = capsys.readouterr().out
    assert "[uncached]" in out and "[cached]" not in out


def test_cli_serve_bench_conflicting_flags(capsys):
    assert main(["serve-bench", "--vertices", "100",
                 "--cache-only", "--no-cache"]) == 2
    assert "exclude each other" in capsys.readouterr().err


def test_cli_serve_bench_missing_graph_file(tmp_path, capsys):
    assert main(["serve-bench", str(tmp_path / "none.txt")]) == 2
    assert "no such file" in capsys.readouterr().err


def test_cli_serve_bench_baseline_roundtrip(tmp_path, capsys):
    baseline = tmp_path / "serve.json"
    args = ["serve-bench", "--vertices", "300", "--requests", "1500",
            "--shards", "4", "--seed", "5"]
    assert main(args + ["--save-baseline", str(baseline)]) == 0
    assert "baseline saved" in capsys.readouterr().err
    doc = json.loads(baseline.read_text())
    assert doc["experiment"] == "serve-bench" and doc["metrics"]
    # Deterministic simulator: an unchanged tree reproduces exactly.
    assert main(args + ["--check-baseline", str(baseline)]) == 0
    assert "0 failure(s)" in capsys.readouterr().out


def test_cli_serve_bench_baseline_detects_drift(tmp_path, capsys):
    baseline = tmp_path / "serve.json"
    args = ["serve-bench", "--vertices", "300", "--requests", "1500",
            "--shards", "4", "--seed", "5"]
    assert main(args + ["--save-baseline", str(baseline)]) == 0
    capsys.readouterr()
    doc = json.loads(baseline.read_text())
    key = next(k for k in sorted(doc["metrics"]) if "throughput" in k)
    doc["metrics"][key] *= 2.0
    baseline.write_text(json.dumps(doc))
    assert main(args + ["--check-baseline", str(baseline)]) == 1
    assert f"FAIL {key}" in capsys.readouterr().out


def test_cli_serve_bench_deadline_and_telemetry(tmp_path, capsys):
    trace_file = tmp_path / "serve.jsonl"
    assert main(["serve-bench", "--vertices", "200", "--requests", "1000",
                 "--deadline", "1e-4", "--trace-out", str(trace_file)]) == 0
    capsys.readouterr()
    records = [json.loads(line) for line in trace_file.read_text().splitlines()]
    span_names = {r["name"] for r in records if r["kind"] == "span"}
    assert "serve.run" in span_names and "serve.build" in span_names
    metric_names = {r["name"] for r in records if r["kind"] == "metric"}
    assert "serve.requests" in metric_names
    assert "serve.latency_seconds" in metric_names
