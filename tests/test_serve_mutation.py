"""Tests for the serving write path: MutationBackend, mixed runs.

Writes are first-class requests: they share the admission queue with
reads, get costed on the simulated clock, invalidate the cache and feed
the replication op log through the leader's listener hooks, and appear
in ``serve.mutation.*`` metrics.  Writes are never deadline-dropped —
dropping an accepted write would silently fork leader state.
"""

import pytest

from repro.baselines.transitive_closure import TransitiveClosure
from repro.core.dynamic import DynamicReachabilityIndex
from repro.graph.generators import random_dag
from repro.pregel.cost_model import CostModel
from repro.serve import (
    MUTATION_OPS,
    BoundedStalenessReplicator,
    CachingBackend,
    MutationBackend,
    QueryCache,
    QueryServer,
    ReplicatedLabelStore,
    ShardedIndexBackend,
    ShardedLabelStore,
)
from repro.telemetry import MetricsRegistry
from repro.workloads.traffic import poisson_arrivals, zipf_pairs
from repro.workloads.updates import mixed_update_stream

_NO_LIMIT = CostModel(time_limit_seconds=None)


def _leader(n=60, m=180, seed=3, **kwargs):
    return DynamicReachabilityIndex(random_dag(n, m, seed=seed), **kwargs)


# ----------------------------------------------------------------------
# MutationBackend statuses and costing
# ----------------------------------------------------------------------
def test_backend_statuses_applied_noop_rejected():
    leader = _leader()
    backend = MutationBackend(leader, cost_model=_NO_LIMIT)
    u, v = next(iter(leader.edges()))

    status, seconds = backend.apply_with_cost("delete", u, v)
    assert status == "applied" and seconds > 0
    status, _ = backend.apply_with_cost("delete", u, v)  # already gone
    assert status == "noop"
    status, _ = backend.apply_with_cost("insert", u, v)
    assert status == "applied"
    status, _ = backend.apply_with_cost("insert", u, v)  # already present
    assert status == "noop"
    status, _ = backend.apply_with_cost("add_node", 0, 0)
    assert status == "applied"
    assert backend.applied == 3 and backend.noops == 2 and backend.rejected == 0


def test_backend_rejects_bad_writes_without_raising():
    leader = _leader()
    backend = MutationBackend(leader, cost_model=_NO_LIMIT)
    # Out-of-range id, self-loop, tombstoned vertex: all rejected, none
    # raise — a bad write must fail the request, not the server.
    assert backend.apply_with_cost("insert", 0, 10**6)[0] == "rejected"
    assert backend.apply_with_cost("insert", 5, 5)[0] == "rejected"
    assert backend.apply_with_cost("delete_node", 7, 7)[0] == "applied"
    assert backend.apply_with_cost("insert", 7, 8)[0] == "rejected"
    assert backend.apply_with_cost("promote", 7, 0)[0] == "rejected"
    assert backend.rejected == 4


def test_backend_unknown_op_raises():
    backend = MutationBackend(_leader(), cost_model=_NO_LIMIT)
    with pytest.raises(ValueError, match="unknown mutation op"):
        backend.apply_with_cost("truncate", 0, 1)
    assert set(MUTATION_OPS) == {
        "insert", "delete", "add_node", "delete_node", "promote"
    }


def test_backend_promote_negative_rank_means_degree_rank():
    leader = _leader()
    backend = MutationBackend(leader, cost_model=_NO_LIMIT)
    tail = list(leader.order.by_rank())[-1]
    for x in leader.alive_vertices()[:8]:
        if x != tail and not leader.has_edge(x, tail):
            leader.insert_edge(x, tail)
    assert leader.drift(tail) > 0
    status, _ = backend.apply_with_cost("promote", tail, -1)
    assert status == "applied"
    assert leader.drift(tail) <= 0


def test_backend_tracks_peak_staleness_window():
    leader = _leader()
    replicator = BoundedStalenessReplicator(
        leader, num_replicas=3, delay_seconds=0.5
    )
    backend = MutationBackend(leader, cost_model=_NO_LIMIT, replicator=replicator)
    u, v = next(iter(leader.edges()))
    backend.apply_with_cost("delete", u, v, at=1.0)
    backend.apply_with_cost("insert", u, v, at=1.3)
    # Followers have not seen the 1.0 op yet when the 1.3 op samples.
    assert backend.staleness_window_seconds == pytest.approx(0.3)
    assert replicator.staleness_window(1.4) == pytest.approx(0.4)
    replicator.advance(10.0)
    assert replicator.staleness_window(10.0) == 0.0


# ----------------------------------------------------------------------
# Listener-driven integration: cache and replication
# ----------------------------------------------------------------------
def test_cache_invalidation_per_op_kind():
    cache = QueryCache()
    cache.put(0, 1, True)
    cache.put(2, 3, False)
    # Neutral ops touch nothing: reachability is unchanged.
    assert cache.invalidate_for_update("add_node", 9, 9) == 0
    assert cache.invalidate_for_update("promote", 4, 0) == 0
    assert len(cache) == 2
    # Inserts can only flip negatives; deletes only positives.
    assert cache.invalidate_for_update("insert", 0, 1) == 1
    assert cache.get(0, 1) is True and cache.get(2, 3) is None
    cache.put(2, 3, False)
    assert cache.invalidate_for_update("delete_node", 5, 5) == 1
    assert cache.get(0, 1) is None and cache.get(2, 3) is False
    with pytest.raises(ValueError):
        cache.invalidate_for_update("bogus", 0, 1)


def test_followers_replay_node_ops_and_promotes_exactly():
    leader = _leader(seed=11)
    replicator = BoundedStalenessReplicator(leader, num_replicas=3)
    for op, u, v in mixed_update_stream(
        leader.current_graph(), 40, node_ratio=0.2, promote_ratio=0.15, seed=5
    ):
        if op == "insert":
            leader.insert_edge(u, v)
        elif op == "delete":
            leader.delete_edge(u, v)
        elif op == "add_node":
            leader.add_node()
        elif op == "delete_node":
            leader.delete_node(u)
        else:
            leader.promote(u, None if v < 0 else v)
    for r in (1, 2):
        replicator.catch_up(r)
        follower = replicator.view(r)
        assert follower.snapshot() == leader.snapshot()
        assert list(follower.order.by_rank()) == list(leader.order.by_rank())
        assert sorted(follower.edges()) == sorted(leader.edges())


def test_drift_promotions_are_logged_with_concrete_ranks():
    # The leader resolves drift-triggered promotions before logging, so
    # followers (built without a drift threshold) replay the exact rank
    # instead of re-deriving it from their own degree view.
    leader = _leader(seed=13, drift_threshold=2)
    replicator = BoundedStalenessReplicator(leader, num_replicas=2)
    tail = list(leader.order.by_rank())[-1]
    for x in leader.alive_vertices():
        if x != tail and not leader.has_edge(x, tail):
            leader.insert_edge(x, tail)
    promotes = [(u, v) for op, u, v, _ in replicator.log if op == "promote"]
    assert promotes, "drift threshold should have fired a promotion"
    assert all(v >= 0 for _, v in promotes)
    replicator.catch_up(1)
    assert replicator.view(1).snapshot() == leader.snapshot()


def test_pending_kinds_treats_node_ops_correctly():
    leader = _leader()
    replicator = BoundedStalenessReplicator(leader, num_replicas=2)
    leader.add_node()
    leader.promote(list(leader.order.by_rank())[-1], 0)
    assert replicator.pending_kinds(1) == (False, False)  # both neutral
    leader.delete_node(0)
    assert replicator.pending_kinds(1) == (False, True)
    u, v = next(iter(leader.edges()))
    leader.delete_edge(u, v)
    leader.insert_edge(u, v)
    assert replicator.pending_kinds(1) == (True, True)


# ----------------------------------------------------------------------
# QueryServer: submit_mutation and mixed runs
# ----------------------------------------------------------------------
def _mixed_server(leader, *, cache=False, deadline=None, metrics=None,
                  replicator=None, queue_depth=1024):
    store = ShardedLabelStore(leader, num_shards=2, cost_model=_NO_LIMIT)
    backend = ShardedIndexBackend(store)
    if cache:
        qcache = QueryCache()
        qcache.attach(leader)
        backend = CachingBackend(backend, qcache, cost_model=_NO_LIMIT)
    return QueryServer(
        backend,
        cost_model=_NO_LIMIT,
        queue_depth=queue_depth,
        deadline_seconds=deadline,
        metrics=metrics,
        mutation_backend=MutationBackend(
            leader, cost_model=_NO_LIMIT, replicator=replicator
        ),
    )


def test_submit_mutation_requires_backend():
    leader = _leader()
    store = ShardedLabelStore(leader, num_shards=2, cost_model=_NO_LIMIT)
    server = QueryServer(ShardedIndexBackend(store), cost_model=_NO_LIMIT)
    with pytest.raises(ValueError, match="mutation_backend"):
        server.submit_mutation("insert", 0, 1)


def test_submit_mutation_applies_and_invalidates_cache():
    leader = _leader()
    store = ShardedLabelStore(leader, num_shards=2, cost_model=_NO_LIMIT)
    cache = QueryCache()
    cache.attach(leader)
    backend = CachingBackend(
        ShardedIndexBackend(store), cache, cost_model=_NO_LIMIT
    )
    server = QueryServer(
        backend,
        cost_model=_NO_LIMIT,
        mutation_backend=MutationBackend(leader, cost_model=_NO_LIMIT),
    )
    u, v = next(iter(leader.edges()))
    answer, _ = backend.query_with_cost(u, v)
    assert answer  # warm the cache with a positive
    status, seconds = server.submit_mutation("delete", u, v)
    assert status == "applied" and seconds > 0
    answer, _ = backend.query_with_cost(u, v)
    assert answer == TransitiveClosure(leader.current_graph()).query(u, v)


def test_run_mixed_reports_reads_and_writes_separately():
    leader = _leader(n=80, m=240, seed=9)
    n = leader.num_vertices
    pairs = zipf_pairs(n, 300, skew=1.2, seed=1)
    arrivals = poisson_arrivals(300, rate=500000.0, seed=2)
    mutations = mixed_update_stream(
        leader.current_graph(), 30, node_ratio=0.1, promote_ratio=0.1, seed=3
    )
    mutation_arrivals = poisson_arrivals(30, rate=100000.0, seed=4)
    server = _mixed_server(leader, cache=True)
    report = server.run_mixed(pairs, arrivals, mutations, mutation_arrivals)
    assert report.mode == "mixed"
    assert report.offered == 300  # reads only
    assert report.mutations_offered == 30
    assert (
        report.mutations_applied
        + report.mutations_noop
        + report.mutations_rejected
        + report.mutations_shed
        == 30
    )
    assert report.mutations_applied > 0
    assert report.update_throughput > 0
    assert "writes:" in report.summary()


def test_run_mixed_never_deadline_drops_writes():
    leader = _leader(n=50, m=150, seed=15)
    pairs = zipf_pairs(leader.num_vertices, 200, skew=1.2, seed=5)
    arrivals = poisson_arrivals(200, rate=5e6, seed=6)  # brutal read load
    mutations = mixed_update_stream(leader.current_graph(), 20, seed=7)
    mutation_arrivals = poisson_arrivals(20, rate=1e6, seed=8)
    server = _mixed_server(leader, deadline=1e-9)  # drops ~every read
    report = server.run_mixed(pairs, arrivals, mutations, mutation_arrivals)
    assert report.deadline_dropped > 0  # the deadline really is brutal
    # Every admitted write executed: accepted writes are never dropped.
    assert report.mutations_applied + report.mutations_noop + \
        report.mutations_rejected == 20 - report.mutations_shed
    assert report.mutations_shed == 0  # queue was deep enough


def test_run_mixed_sheds_writes_under_queue_pressure():
    leader = _leader(n=50, m=150, seed=21)
    pairs = zipf_pairs(leader.num_vertices, 400, skew=1.2, seed=9)
    arrivals = [0.0] * 400  # everything at once: the queue overflows
    mutations = mixed_update_stream(leader.current_graph(), 40, seed=10)
    mutation_arrivals = [0.0] * 40
    server = _mixed_server(leader, queue_depth=16)
    report = server.run_mixed(pairs, arrivals, mutations, mutation_arrivals)
    assert report.shed > 0
    assert report.mutations_shed > 0
    assert report.mutations_offered == 40


def test_run_mixed_validates_schedules():
    leader = _leader()
    server = _mixed_server(leader)
    with pytest.raises(ValueError, match="arrival"):
        server.run_mixed([(0, 1)], [0.0, 1.0], [], [])
    with pytest.raises(ValueError, match="mutation"):
        server.run_mixed([], [], [("insert", 0, 1)], [0.0, 1.0])
    with pytest.raises(ValueError, match="non-decreasing"):
        server.run_mixed([(0, 1), (1, 2)], [1.0, 0.5], [], [])


def test_run_mixed_records_mutation_metrics():
    leader = _leader(n=40, m=120, seed=17)
    registry = MetricsRegistry()
    replicator = BoundedStalenessReplicator(leader, num_replicas=2)
    server = _mixed_server(leader, metrics=registry, replicator=replicator)
    pairs = zipf_pairs(leader.num_vertices, 100, skew=1.2, seed=11)
    arrivals = poisson_arrivals(100, rate=200000.0, seed=12)
    mutations = mixed_update_stream(leader.current_graph(), 10, seed=13)
    mutation_arrivals = poisson_arrivals(10, rate=50000.0, seed=14)
    report = server.run_mixed(pairs, arrivals, mutations, mutation_arrivals)
    assert registry.counter("serve.mutation.requests").value == 10
    assert (
        registry.counter("serve.mutation.applied").value
        == report.mutations_applied
    )
    assert (
        registry.histogram("serve.mutation.latency_seconds").count
        == report.mutations_applied
        + report.mutations_noop
        + report.mutations_rejected
    )
    assert registry.gauge(
        "serve.mutation.staleness_window_seconds"
    ).value == pytest.approx(report.staleness_window_seconds)


def test_read_only_run_reports_no_mutation_fields():
    leader = _leader()
    registry = MetricsRegistry()
    server = _mixed_server(leader, metrics=registry)
    pairs = zipf_pairs(leader.num_vertices, 50, skew=1.2, seed=19)
    report = server.run_open(pairs, poisson_arrivals(50, rate=1000.0, seed=20))
    assert report.mutations_offered == 0
    assert "writes:" not in report.summary()
    assert "serve.mutation.requests" not in registry


# ----------------------------------------------------------------------
# Mixed serve bench
# ----------------------------------------------------------------------
def test_run_mixed_serve_bench_is_deterministic():
    from repro.serve import MIXED_COLUMNS, run_mixed_serve_bench

    graph = random_dag(120, 360, seed=23)
    kwargs = dict(
        shards=2, requests=800, writes=80, seed=3,
        replicas=2, without_cache=False, cost_model=_NO_LIMIT,
    )
    table_a, reports_a = run_mixed_serve_bench(graph, **kwargs)
    table_b, _ = run_mixed_serve_bench(graph, **kwargs)
    assert table_a.columns == list(MIXED_COLUMNS)
    assert list(reports_a) == ["cached"]  # cached row only
    for column in MIXED_COLUMNS:
        assert table_a.get("cached", column) == table_b.get("cached", column)
    report = reports_a["cached"]
    assert report.mutations_applied > 0
    assert report.update_throughput > 0
    assert table_a.get("cached", "applied").value == float(
        report.mutations_applied
    )
