"""Tests for distributed WCC and SCC (FW-BW-Trim)."""

import networkx as nx
import pytest
from hypothesis import given, settings

from repro.distributed import (
    distributed_condensation,
    distributed_scc,
    distributed_wcc,
)
from repro.graph.digraph import DiGraph
from repro.graph.generators import random_digraph, social_graph
from repro.graph.scc import strongly_connected_components
from repro.pregel.cost_model import CostModel
from tests.conftest import digraphs

_NO_LIMIT = CostModel(time_limit_seconds=None)


def _as_partition(labels) -> set[frozenset[int]]:
    groups: dict[int, set[int]] = {}
    for v, label in enumerate(labels):
        groups.setdefault(label, set()).add(v)
    return {frozenset(g) for g in groups.values()}


# ----------------------------------------------------------------------
# WCC
# ----------------------------------------------------------------------
def test_wcc_two_islands():
    g = DiGraph(5, [(0, 1), (1, 2), (3, 4)])
    component, stats = distributed_wcc(g, num_nodes=2, cost_model=_NO_LIMIT)
    assert component[0] == component[1] == component[2] == 0
    assert component[3] == component[4] == 3
    assert stats.supersteps >= 2


def test_wcc_direction_ignored():
    g = DiGraph(3, [(1, 0), (1, 2)])  # only out-edges from 1
    component, _stats = distributed_wcc(g, num_nodes=2, cost_model=_NO_LIMIT)
    assert len(set(component)) == 1


@settings(max_examples=40, deadline=None)
@given(digraphs())
def test_property_wcc_matches_networkx(g):
    nx_graph = nx.Graph()
    nx_graph.add_nodes_from(range(g.num_vertices))
    nx_graph.add_edges_from(g.edges())
    expected = {frozenset(c) for c in nx.connected_components(nx_graph)}
    component, _stats = distributed_wcc(g, num_nodes=4, cost_model=_NO_LIMIT)
    assert _as_partition(component) == expected


# ----------------------------------------------------------------------
# SCC
# ----------------------------------------------------------------------
def test_scc_simple_cycle_plus_tail():
    g = DiGraph(5, [(0, 1), (1, 2), (2, 0), (2, 3), (3, 4)])
    scc_of, _stats = distributed_scc(g, num_nodes=2, cost_model=_NO_LIMIT)
    assert scc_of[0] == scc_of[1] == scc_of[2]
    assert scc_of[3] != scc_of[0]
    assert len({scc_of[3], scc_of[4], scc_of[0]}) == 3


@settings(max_examples=50, deadline=None)
@given(digraphs())
def test_property_scc_matches_tarjan(g):
    expected = {frozenset(c) for c in strongly_connected_components(g)}
    scc_of, _stats = distributed_scc(g, num_nodes=4, cost_model=_NO_LIMIT)
    assert _as_partition(scc_of) == expected


@settings(max_examples=25, deadline=None)
@given(digraphs())
def test_property_scc_without_trim_matches(g):
    expected = {frozenset(c) for c in strongly_connected_components(g)}
    scc_of, _stats = distributed_scc(
        g, num_nodes=2, cost_model=_NO_LIMIT, trim=False
    )
    assert _as_partition(scc_of) == expected


def test_scc_representatives_are_members():
    g = social_graph(300, seed=3, reciprocity=0.4)
    scc_of, _stats = distributed_scc(g, num_nodes=8, cost_model=_NO_LIMIT)
    for v, rep in enumerate(scc_of):
        assert scc_of[rep] == rep  # representative labels itself


def test_scc_deterministic_across_node_counts():
    g = random_digraph(120, 400, seed=4)
    a, _ = distributed_scc(g, num_nodes=1, cost_model=_NO_LIMIT)
    b, _ = distributed_scc(g, num_nodes=16, cost_model=_NO_LIMIT)
    assert a == b


def test_trim_reduces_rounds_on_sparse_graphs():
    """Trimming dissolves the acyclic bulk in a few announcement
    rounds, so far fewer FW-BW pivot rounds (hence super-steps and
    barriers) are needed — the latency-critical resource on a cluster."""
    g = random_digraph(400, 700, seed=5)  # mostly acyclic
    _with, stats_with = distributed_scc(g, num_nodes=4, cost_model=_NO_LIMIT)
    _without, stats_without = distributed_scc(
        g, num_nodes=4, cost_model=_NO_LIMIT, trim=False
    )
    assert stats_with.supersteps < stats_without.supersteps


# ----------------------------------------------------------------------
# Distributed condensation
# ----------------------------------------------------------------------
@settings(max_examples=30, deadline=None)
@given(digraphs())
def test_property_condensation_matches_serial(g):
    from repro.graph.scc import condensation as serial

    cond, stats = distributed_condensation(g, num_nodes=4, cost_model=_NO_LIMIT)
    expected = serial(g)
    assert {frozenset(m) for m in cond.members} == {
        frozenset(m) for m in expected.members
    }
    assert cond.dag.num_vertices == expected.dag.num_vertices
    # Same contracted edge structure up to relabeling.
    assert cond.dag.num_edges == expected.dag.num_edges
    # Reverse-topological id contract (Tarjan-compatible).
    for cu, cv in cond.dag.edges():
        assert cv < cu
    assert stats.compute_units > 0


def test_condensation_member_mapping():
    g = DiGraph(4, [(0, 1), (1, 0), (1, 2), (2, 3), (3, 2)])
    cond, _stats = distributed_condensation(g, num_nodes=2, cost_model=_NO_LIMIT)
    for cid, members in enumerate(cond.members):
        for v in members:
            assert cond.component_of[v] == cid
