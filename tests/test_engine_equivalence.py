"""Differential engine-equivalence harness: simulator vs multiprocessing.

The multiprocessing engine's whole contract is "byte-identical labels,
identical charged accounting" — this module proves it three ways:

1. A fixed matrix of every fuzz graph family × every cluster method,
   comparing the *serialized index files* byte for byte plus the
   charged run statistics.  A mismatch is reported as a minimal
   replayable fuzz case: the failing configuration is pinned into a
   :class:`~repro.fuzz.cases.FuzzCase`, shrunk against the
   ``engine-mismatch`` fingerprint, written as a JSON repro, and the
   test fails with the repro path and the one-command replay line.
2. A hypothesis property: the mp index is invariant to the worker
   count (1, 2, 4) and to the barrier arrival order (a seeded shuffle
   of which worker the master drains first).
3. The same matrix through the fuzz harness's own ``engine-mismatch``
   oracle, so the nightly campaign and this tier-1 test can never
   drift apart on what "equivalent" means.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.drl import drl_index
from repro.core.drl_basic import drl_basic_index
from repro.core.drl_batch import drl_batch_index
from repro.fuzz.cases import FAMILIES, FuzzCase, family_graph
from repro.fuzz.oracles import oracle_engine_mismatch, run_case
from repro.fuzz.shrink import shrink_case
from repro.pregel.mp import MultiprocessEngine

from tests.conftest import family_graphs

#: The cluster methods both engines must agree on (the serial TOL
#: baseline never touches an engine).
METHODS = {
    "drl": drl_index,
    "drl-": drl_basic_index,
    "drl-b": drl_batch_index,
}

#: One deterministic mid-size graph per family for the fixed matrix.
MATRIX_SEED = 1302
MATRIX_VERTICES = 18
MATRIX_NODES = 4
MATRIX_WORKERS = 2


def _fail_with_repro(tmp_path, family: str, method: str, detail: str):
    """Reduce the failing configuration to a minimal replayable repro.

    Pins the graph into a concrete mp-stamped :class:`FuzzCase`, shrinks
    it while the ``engine-mismatch`` fingerprint reproduces, writes the
    reduced case as JSON, and fails with the replay command.
    """
    case = FuzzCase(
        case_id=0,
        family=family,
        seed=MATRIX_SEED,
        num_vertices=MATRIX_VERTICES,
        num_nodes=MATRIX_NODES,
        engine="mp",
    ).concretize()
    oracles = {"engine-mismatch": oracle_engine_mismatch}
    result = run_case(case, oracles=oracles)
    final, message = case, detail
    if not result.ok:
        reduction = shrink_case(
            case, fingerprint="engine-mismatch", oracles=oracles
        )
        final, message = reduction.case, reduction.failure.message
    path = tmp_path / f"engine-mismatch-{family}-{method}.json"
    final.save(path)
    pytest.fail(
        f"engines diverge on {family}/{method}: {message}\n"
        f"minimal repro ({final.num_vertices} vertices): {path}\n"
        f"replay with: repro fuzz --replay {path}"
    )


@pytest.mark.parametrize("family", FAMILIES)
@pytest.mark.parametrize("method", sorted(METHODS))
def test_engine_matrix_byte_identical(tmp_path, family, method):
    """Every family × method: sim and mp serialize to identical bytes."""
    graph = family_graph(family, MATRIX_VERTICES, MATRIX_SEED)
    build = METHODS[method]
    sim = build(graph, num_nodes=MATRIX_NODES)
    mp = build(
        graph, num_nodes=MATRIX_NODES, engine="mp", workers=MATRIX_WORKERS
    )

    sim_path = tmp_path / "sim.idx"
    mp_path = tmp_path / "mp.idx"
    sim.index.save(sim_path)
    mp.index.save(mp_path)
    if sim_path.read_bytes() != mp_path.read_bytes():
        _fail_with_repro(
            tmp_path, family, method,
            f"serialized indexes differ "
            f"({sim.index.num_entries} vs {mp.index.num_entries} entries)",
        )

    # The mp engine charges through the same accounting functions, so
    # the *simulated* statistics must match exactly too — any drift
    # here means a worker counted work the simulator would not.
    for attr in (
        "supersteps",
        "compute_units",
        "local_messages",
        "remote_messages",
        "remote_bytes",
        "broadcast_bytes",
        "simulated_seconds",
    ):
        got, want = getattr(mp.stats, attr), getattr(sim.stats, attr)
        if got != want:
            _fail_with_repro(
                tmp_path, family, method,
                f"stats.{attr} diverges: mp={got!r} sim={want!r}",
            )


@pytest.mark.parametrize("family", FAMILIES)
def test_engine_mismatch_oracle_clean_on_matrix(family):
    """The fuzz oracle agrees with the direct matrix comparison."""
    case = FuzzCase(
        case_id=0,
        family=family,
        seed=MATRIX_SEED,
        num_vertices=MATRIX_VERTICES,
        num_nodes=MATRIX_NODES,
        engine="mp",
    )
    result = run_case(
        case, oracles={"engine-mismatch": oracle_engine_mismatch}
    )
    assert result.oracles_run == ("engine-mismatch",)
    assert result.ok, [f.message for f in result.failures]


@settings(max_examples=25, deadline=None)
@given(
    graph=family_graphs(max_vertices=12),
    workers=st.sampled_from([1, 2, 4]),
    arrival_seed=st.integers(min_value=0, max_value=2**16),
)
def test_mp_invariant_to_workers_and_arrival_order(
    graph, workers, arrival_seed
):
    """Property: the mp index never depends on the worker count or on
    the order worker replies arrive at the barrier (seeded shuffle)."""
    sim = drl_index(graph, num_nodes=3)
    engine = MultiprocessEngine(workers=workers, arrival_seed=arrival_seed)
    mp = drl_index(graph, num_nodes=3, engine=engine)
    assert mp.index == sim.index
    assert mp.stats.simulated_seconds == sim.stats.simulated_seconds
    assert mp.stats.compute_units == sim.stats.compute_units
