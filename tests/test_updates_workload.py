"""Tests for edge-update streams."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dynamic import DynamicReachabilityIndex
from repro.core.tol import tol_index
from repro.graph.digraph import DiGraph
from repro.graph.generators import random_digraph
from repro.workloads.updates import apply_stream, update_stream


def test_stream_validity():
    g = random_digraph(20, 60, seed=1)
    stream = update_stream(g, 50, seed=2)
    assert len(stream) == 50
    present = set(g.edges())
    for op, u, v in stream:
        assert u != v
        if op == "insert":
            assert (u, v) not in present
            present.add((u, v))
        else:
            assert (u, v) in present
            present.discard((u, v))


def test_stream_deterministic():
    g = random_digraph(15, 40, seed=3)
    assert update_stream(g, 30, seed=4) == update_stream(g, 30, seed=4)
    assert update_stream(g, 30, seed=4) != update_stream(g, 30, seed=5)


def test_insert_only_and_delete_only():
    g = random_digraph(15, 40, seed=6)
    inserts = update_stream(g, 20, insert_ratio=1.0, seed=7)
    assert all(op == "insert" for op, _u, _v in inserts)
    deletes = update_stream(g, 20, insert_ratio=0.0, seed=8)
    assert all(op == "delete" for op, _u, _v in deletes)


def test_delete_only_falls_back_when_empty():
    g = DiGraph(3, [(0, 1)])
    stream = update_stream(g, 3, insert_ratio=0.0, seed=9)
    # One real deletion, then forced insertions.
    assert stream[0] == ("delete", 0, 1)
    assert stream[1][0] == "insert"


def test_invalid_parameters():
    g = DiGraph(3, [])
    with pytest.raises(ValueError):
        update_stream(g, 5, insert_ratio=1.5)
    with pytest.raises(ValueError):
        update_stream(DiGraph(1, []), 5)


@settings(max_examples=20, deadline=None)
@given(st.integers(3, 10), st.integers(0, 30))
def test_property_stream_applies_exactly(n, count):
    g = random_digraph(n, min(2 * n, n * (n - 1)), seed=n)
    stream = update_stream(g, count, seed=count)
    dynamic = DynamicReachabilityIndex(g)
    apply_stream(dynamic, stream)
    # Edge set evolves exactly as the stream dictates.
    expected = set(g.edges())
    for op, u, v in stream:
        if op == "insert":
            expected.add((u, v))
        else:
            expected.discard((u, v))
    assert set(dynamic.edges()) == expected
    # And the maintained index is still exact.
    assert dynamic.snapshot() == tol_index(
        dynamic.current_graph(), dynamic.order
    )


# ----------------------------------------------------------------------
# Mixed streams: node ops and order upgrades
# ----------------------------------------------------------------------
def test_mixed_stream_validity_at_position():
    from repro.workloads.updates import IDEAL_RANK, mixed_update_stream

    g = random_digraph(15, 40, seed=21)
    stream = mixed_update_stream(
        g, 60, node_ratio=0.3, promote_ratio=0.2, seed=22
    )
    assert len(stream) == 60
    present = set(g.edges())
    alive = set(range(g.num_vertices))
    next_id = g.num_vertices
    for op, u, v in stream:
        if op == "insert":
            assert u in alive and v in alive and u != v
            assert (u, v) not in present
            present.add((u, v))
        elif op == "delete":
            assert (u, v) in present
            present.discard((u, v))
        elif op == "add_node":
            assert u == v == next_id  # predicted dense id
            alive.add(next_id)
            next_id += 1
        elif op == "delete_node":
            assert u == v and u in alive
            alive.discard(u)
            present = {(a, b) for a, b in present if u not in (a, b)}
        else:
            assert op == "promote"
            assert u in alive and v == IDEAL_RANK
    assert any(op in ("add_node", "delete_node") for op, _, _ in stream)
    assert any(op == "promote" for op, _, _ in stream)


def test_mixed_stream_edge_only_when_ratios_zero():
    from repro.workloads.updates import mixed_update_stream

    g = random_digraph(15, 40, seed=23)
    stream = mixed_update_stream(g, 30, seed=24)
    assert all(op in ("insert", "delete") for op, _, _ in stream)
    # Determinism: same seed, same stream; different seed, different.
    assert stream == mixed_update_stream(g, 30, seed=24)
    assert stream != mixed_update_stream(g, 30, seed=25)


def test_mixed_stream_invalid_ratios():
    from repro.workloads.updates import mixed_update_stream

    g = random_digraph(6, 10, seed=1)
    with pytest.raises(ValueError):
        mixed_update_stream(g, 5, node_ratio=-0.1)
    with pytest.raises(ValueError):
        mixed_update_stream(g, 5, promote_ratio=1.5)
    with pytest.raises(ValueError):
        mixed_update_stream(g, 5, node_ratio=0.7, promote_ratio=0.7)


@settings(max_examples=15, deadline=None)
@given(st.integers(4, 10), st.integers(0, 25))
def test_property_mixed_stream_applies_exactly(n, count):
    from repro.workloads.updates import mixed_update_stream

    g = random_digraph(n, min(2 * n, n * (n - 1)), seed=n)
    stream = mixed_update_stream(
        g, count, node_ratio=0.25, promote_ratio=0.15, seed=count
    )
    dynamic = DynamicReachabilityIndex(g)
    apply_stream(dynamic, stream)
    assert dynamic.snapshot() == tol_index(
        dynamic.current_graph(), dynamic.order
    )
