"""Tests for DRL⁻, DRL, DRL_b, DRL_b^M: all must equal TOL exactly."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.drl import drl_index
from repro.core.drl_basic import drl_basic_index
from repro.core.drl_batch import drl_batch_index
from repro.core.multicore import drl_multicore_index
from repro.core.tol import tol_index_reference
from repro.errors import OutOfMemoryError, TimeLimitExceeded
from repro.graph.digraph import DiGraph
from repro.graph.generators import random_digraph, social_graph, web_graph
from repro.graph.order import degree_order, random_order
from repro.pregel.cost_model import CostModel, shared_memory_model
from tests.conftest import digraphs

_NO_LIMIT = CostModel(time_limit_seconds=None)


# ----------------------------------------------------------------------
# Exact index equality with TOL
# ----------------------------------------------------------------------
@settings(max_examples=50, deadline=None)
@given(digraphs(), st.sampled_from([1, 2, 5, 32]))
def test_property_drl_equals_tol(g, num_nodes):
    order = degree_order(g)
    expected = tol_index_reference(g, order)
    result = drl_index(g, order, num_nodes=num_nodes, cost_model=_NO_LIMIT)
    assert result.index == expected


@settings(max_examples=30, deadline=None)
@given(digraphs())
def test_property_drl_basic_equals_tol(g):
    order = degree_order(g)
    expected = tol_index_reference(g, order)
    result = drl_basic_index(g, order, num_nodes=4, cost_model=_NO_LIMIT)
    assert result.index == expected


@settings(max_examples=40, deadline=None)
@given(
    digraphs(),
    st.sampled_from([1, 2, 3, 7]),
    st.sampled_from([1.0, 1.5, 2.0, 3.0]),
)
def test_property_drl_batch_equals_tol(g, b, k):
    order = degree_order(g)
    expected = tol_index_reference(g, order)
    result = drl_batch_index(
        g,
        order,
        num_nodes=4,
        initial_batch_size=b,
        growth_factor=k,
        cost_model=_NO_LIMIT,
    )
    assert result.index == expected


@settings(max_examples=20, deadline=None)
@given(digraphs())
def test_property_drl_without_check_pruning_still_exact(g):
    order = degree_order(g)
    expected = tol_index_reference(g, order)
    result = drl_index(
        g, order, num_nodes=4, check_pruning=False, cost_model=_NO_LIMIT
    )
    assert result.index == expected


@settings(max_examples=20, deadline=None)
@given(digraphs())
def test_property_random_order_equality(g):
    order = random_order(g, seed=99)
    expected = tol_index_reference(g, order)
    assert drl_index(g, order, num_nodes=4, cost_model=_NO_LIMIT).index == expected
    assert (
        drl_batch_index(g, order, num_nodes=4, cost_model=_NO_LIMIT).index
        == expected
    )


def test_medium_graphs_end_to_end():
    for factory, seed in ((social_graph, 21), (web_graph, 22)):
        g = factory(700, seed=seed)
        order = degree_order(g)
        expected = tol_index_reference(g, order)
        assert drl_index(g, order, cost_model=_NO_LIMIT).index == expected
        assert drl_batch_index(g, order, cost_model=_NO_LIMIT).index == expected


# ----------------------------------------------------------------------
# Determinism and node-count invariance
# ----------------------------------------------------------------------
def test_index_identical_across_node_counts():
    g = random_digraph(120, 400, seed=8)
    order = degree_order(g)
    results = [
        drl_batch_index(g, order, num_nodes=n, cost_model=_NO_LIMIT).index
        for n in (1, 2, 8, 32)
    ]
    assert all(index == results[0] for index in results)


def test_work_counts_deterministic():
    g = random_digraph(100, 300, seed=9)
    order = degree_order(g)
    a = drl_batch_index(g, order, num_nodes=8, cost_model=_NO_LIMIT).stats
    b = drl_batch_index(g, order, num_nodes=8, cost_model=_NO_LIMIT).stats
    assert a.compute_units == b.compute_units
    assert a.remote_messages == b.remote_messages
    assert a.simulated_seconds == b.simulated_seconds


def test_compute_units_invariant_under_node_count():
    """BSP semantics: partitioning moves work, it does not change it."""
    g = random_digraph(100, 300, seed=10)
    order = degree_order(g)
    units = {
        n: drl_index(g, order, num_nodes=n, cost_model=_NO_LIMIT).stats.compute_units
        for n in (1, 4, 32)
    }
    assert len(set(units.values())) == 1


# ----------------------------------------------------------------------
# Cost accounting sanity
# ----------------------------------------------------------------------
def test_single_node_run_has_no_remote_traffic():
    g = random_digraph(80, 240, seed=11)
    stats = drl_index(g, num_nodes=1, cost_model=_NO_LIMIT).stats
    assert stats.remote_messages == 0
    assert stats.remote_bytes == 0
    assert stats.broadcast_bytes == 0
    assert stats.communication_seconds == 0.0
    assert stats.local_messages > 0


def test_multi_node_run_has_remote_traffic():
    g = random_digraph(80, 240, seed=11)
    stats = drl_index(g, num_nodes=8, cost_model=_NO_LIMIT).stats
    assert stats.remote_messages > 0
    assert stats.communication_seconds > 0
    assert stats.num_nodes == 8
    assert len(stats.per_node_units) == 8
    assert sum(stats.per_node_units) == stats.compute_units


def test_more_nodes_reduce_computation_seconds():
    g = social_graph(800, seed=12)
    t1 = drl_batch_index(g, num_nodes=1, cost_model=_NO_LIMIT).stats
    t16 = drl_batch_index(g, num_nodes=16, cost_model=_NO_LIMIT).stats
    assert t16.computation_seconds < t1.computation_seconds


def test_batching_reduces_work_on_hub_graphs():
    """The headline claim behind DRL_b: batch label pruning shrinks the
    search space versus plain DRL."""
    g = web_graph(1200, seed=13)
    order = degree_order(g)
    drl_units = drl_index(g, order, cost_model=_NO_LIMIT).stats.compute_units
    batch_units = drl_batch_index(g, order, cost_model=_NO_LIMIT).stats.compute_units
    assert batch_units < drl_units


def test_drl_basic_does_more_work_than_drl():
    g = web_graph(800, seed=14)
    order = degree_order(g)
    basic = drl_basic_index(g, order, num_nodes=4, cost_model=_NO_LIMIT).stats
    drl = drl_index(g, order, num_nodes=4, cost_model=_NO_LIMIT).stats
    assert basic.compute_units > drl.compute_units


# ----------------------------------------------------------------------
# Failure gates
# ----------------------------------------------------------------------
def test_time_limit_raises():
    g = social_graph(600, seed=15)
    impatient = CostModel(time_limit_seconds=1e-7)
    with pytest.raises(TimeLimitExceeded):
        drl_basic_index(g, num_nodes=4, cost_model=impatient)


def test_multicore_memory_gate():
    g = social_graph(300, seed=16)
    tiny = shared_memory_model(node_memory_bytes=512)
    with pytest.raises(OutOfMemoryError):
        drl_multicore_index(g, cost_model=tiny)


def test_multicore_has_free_communication():
    g = random_digraph(100, 300, seed=17)
    stats = drl_multicore_index(g, num_cores=8).stats
    assert stats.communication_seconds == 0.0
    assert stats.remote_messages > 0  # messages still cross "cores"


# ----------------------------------------------------------------------
# Edge cases
# ----------------------------------------------------------------------
def test_empty_graph():
    g = DiGraph(0, [])
    assert drl_index(g, cost_model=_NO_LIMIT).index.num_vertices == 0
    assert drl_batch_index(g, cost_model=_NO_LIMIT).index.num_vertices == 0


def test_single_vertex():
    g = DiGraph(1, [])
    idx = drl_batch_index(g, cost_model=_NO_LIMIT).index
    assert idx.query(0, 0)


def test_explicit_batches_override():
    g = random_digraph(30, 90, seed=18)
    order = degree_order(g)
    batches = [[order.vertex_at_rank(r)] for r in range(30)]  # TOL schedule
    result = drl_batch_index(
        g, order, batches=batches, num_nodes=2, cost_model=_NO_LIMIT
    )
    assert result.index == tol_index_reference(g, order)
