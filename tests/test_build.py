"""Tests for the build_index façade."""

import pytest

from repro.core.build import METHOD_NAMES, build_index
from repro.core.tol import tol_index_reference
from repro.graph.generators import random_digraph
from repro.graph.order import degree_order
from repro.pregel.cost_model import CostModel

_NO_LIMIT = CostModel(time_limit_seconds=None)


def test_all_methods_return_the_same_index():
    g = random_digraph(60, 180, seed=1)
    order = degree_order(g)
    expected = tol_index_reference(g, order)
    for method in METHOD_NAMES:
        result = build_index(
            g, method=method, order=order, num_nodes=4, cost_model=_NO_LIMIT
        )
        assert result.index == expected, method
        assert result.stats.compute_units > 0, method


def test_method_names_cover_the_paper():
    assert set(METHOD_NAMES) == {"tol", "drl-", "drl", "drl-b", "drl-b-m"}


def test_unknown_method_rejected():
    g = random_digraph(10, 20, seed=2)
    with pytest.raises(ValueError, match="unknown method"):
        build_index(g, method="magic")


def test_default_method_is_drl_b():
    g = random_digraph(40, 100, seed=3)
    default = build_index(g, cost_model=_NO_LIMIT)
    explicit = build_index(g, method="drl-b", cost_model=_NO_LIMIT)
    assert default.index == explicit.index


def test_kwargs_forwarded():
    g = random_digraph(40, 100, seed=4)
    result = build_index(
        g,
        method="drl-b",
        initial_batch_size=4,
        growth_factor=3.0,
        cost_model=_NO_LIMIT,
    )
    assert result.index == tol_index_reference(g, degree_order(g))


def test_tol_reports_single_node_stats():
    g = random_digraph(40, 100, seed=5)
    result = build_index(g, method="tol", cost_model=_NO_LIMIT)
    assert result.stats.num_nodes == 1
    assert result.stats.communication_seconds == 0.0
