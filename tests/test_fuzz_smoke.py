"""Tier-1 smoke of the differential fuzzing harness.

25 seeded cases per graph family run the full oracle matrix and must
pass clean; generation is asserted deterministic; failure repro files
round-trip through serialisation and replay with the same failure
fingerprint (exercised via an intentionally broken oracle stub).
"""

import json

import pytest

from repro.fuzz import (
    FAMILIES,
    FuzzCase,
    family_graph,
    generate_cases,
    load_failure,
    oracles_for,
    replay_failure,
    run_case,
    run_fuzz,
)
from repro.fuzz.oracles import ORACLES
from repro.graph.scc import strongly_connected_components


# ----------------------------------------------------------------------
# Per-family clean sweep (the smoke tier CI runs on every PR)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("family", FAMILIES)
def test_family_smoke_25_cases_clean(family):
    for case in generate_cases(seed=42, count=25, families=[family]):
        result = run_case(case)
        assert result.ok, (
            case.describe(),
            [f"[{f.oracle}] {f.message}" for f in result.failures],
        )


# ----------------------------------------------------------------------
# Deterministic generation
# ----------------------------------------------------------------------
def test_generation_is_deterministic():
    assert generate_cases(seed=5, count=30) == generate_cases(seed=5, count=30)
    assert generate_cases(seed=5, count=30) != generate_cases(seed=6, count=30)


def test_generation_prefix_stable():
    """A longer campaign sees exactly the shorter one's cases first —
    the property that makes --cases and --time-budget interchangeable."""
    assert generate_cases(seed=9, count=10) == generate_cases(seed=9, count=40)[:10]


def test_generation_round_robins_families():
    cases = generate_cases(seed=0, count=2 * len(FAMILIES))
    assert [c.family for c in cases] == list(FAMILIES) * 2


def test_generation_rejects_unknown_family():
    with pytest.raises(ValueError, match="unknown graph family"):
        generate_cases(seed=0, count=1, families=["moebius"])


def test_family_graph_rejects_unknown_family():
    with pytest.raises(ValueError, match="unknown graph family"):
        family_graph("moebius", 10, 0)


def test_family_graphs_have_expected_structure():
    for family in FAMILIES:
        g = family_graph(family, 20, seed=3)
        assert g.num_vertices >= 4
        assert g.num_edges > 0
    sccs = strongly_connected_components(family_graph("scc-heavy", 30, seed=1))
    assert any(len(c) > 1 for c in sccs)
    dag = family_graph("dag", 20, seed=2)
    assert all(len(c) == 1 for c in strongly_connected_components(dag))


def test_oracle_applicability():
    base = FuzzCase(case_id=0, family="dag", seed=1, num_vertices=8)
    names = oracles_for(base)
    assert "fault-equivalence" not in names
    assert "dynamic-vs-rebuild" not in names
    assert {"methods-agree", "cover", "soundness", "canonical"} <= set(names)
    full = FuzzCase(
        case_id=0, family="dag", seed=1, num_vertices=8,
        faults="crash=0@2", updates=(("insert", 0, 1),),
    )
    assert "fault-equivalence" in oracles_for(full)
    assert "dynamic-vs-rebuild" in oracles_for(full)


# ----------------------------------------------------------------------
# Case serialisation
# ----------------------------------------------------------------------
def test_case_json_round_trip(tmp_path):
    case = generate_cases(seed=11, count=8)[7].concretize()
    assert FuzzCase.from_dict(case.to_dict()) == case
    path = tmp_path / "case.json"
    case.save(path)
    assert FuzzCase.load(path) == case


def test_concretize_pins_the_generated_graph():
    case = generate_cases(seed=3, count=1)[0]
    concrete = case.concretize()
    assert concrete.edges is not None
    assert concrete.graph() == case.graph()
    assert concrete.concretize() is concrete


# ----------------------------------------------------------------------
# Failure repro round-trip (broken oracle stub)
# ----------------------------------------------------------------------
def _broken_oracles(threshold=6):
    """Oracle registry whose 'cover' stub flags any graph with at
    least ``threshold`` vertices — a deterministic, shrinkable bug."""

    def stub(ctx):
        n = ctx.graph.num_vertices
        if n >= threshold:
            return [f"stub violation: graph has {n} >= {threshold} vertices"]
        return []

    oracles = dict(ORACLES)
    oracles["cover"] = stub
    return oracles


def test_replay_round_trip_same_fingerprint(tmp_path):
    oracles = _broken_oracles()
    report = run_fuzz(
        seed=13, count=3, oracles=oracles, failures_dir=tmp_path
    )
    assert not report.ok
    assert report.failures[0].path is not None
    # Serialise → load → replay must reproduce the same fingerprint.
    data = load_failure(report.failures[0].path)
    assert isinstance(data["case"], FuzzCase)
    replayed_data, result = replay_failure(report.failures[0].path, oracles=oracles)
    assert data["fingerprint"] in result.fingerprints
    # ... and the shrunk repro is minimal for the stub's threshold.
    assert replayed_data["case"].num_vertices == 6
    # A fixed registry no longer reproduces it (repro is stub-specific).
    _, clean = replay_failure(report.failures[0].path)
    assert data["fingerprint"] not in clean.fingerprints


def test_repro_file_contents(tmp_path):
    report = run_fuzz(
        seed=21, count=1, oracles=_broken_oracles(threshold=4),
        failures_dir=tmp_path,
    )
    assert len(report.failures) == 1
    payload = json.loads(report.failures[0].path.read_text())
    assert payload["oracle"] == "cover"
    assert payload["fingerprint"] == "cover"
    assert "stub violation" in payload["message"]
    assert payload["case"]["edges"] is not None  # pinned, generator-free
    assert payload["original_case"]["case_id"] == payload["case_id"]


def test_run_fuzz_summary_tallies():
    report = run_fuzz(seed=42, count=10, failures_dir=None)
    assert report.ok
    assert report.completed == 10
    assert sum(report.family_cases.values()) == 10
    assert report.oracle_runs["methods-agree"] == 10
    rendered = report.render()
    assert "CLEAN" in rendered
    for family in FAMILIES:
        assert family in rendered


def test_run_fuzz_requires_count_or_budget():
    with pytest.raises(ValueError, match="case count"):
        run_fuzz(seed=0, count=None, time_budget=None)


def test_oracle_crash_is_a_finding():
    def exploding(ctx):
        raise RuntimeError("oracle blew up")

    oracles = dict(ORACLES)
    oracles["condensed"] = exploding
    case = generate_cases(seed=1, count=1)[0]
    result = run_case(case, oracles=oracles)
    assert not result.ok
    failure = next(f for f in result.failures if f.oracle == "condensed")
    assert failure.kind == "exception"
    assert failure.fingerprint == "condensed!RuntimeError"


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def test_cli_fuzz_clean_campaign(tmp_path, capsys):
    from repro.cli import main

    assert main([
        "fuzz", "--cases", "5", "--seed", "3",
        "--failures-dir", str(tmp_path / "failures"),
    ]) == 0
    out = capsys.readouterr().out
    assert "CLEAN" in out
    assert "methods-agree" in out
    assert not (tmp_path / "failures").exists()  # no failures, no dir


def test_cli_fuzz_families_and_time_budget(tmp_path, capsys):
    from repro.cli import main

    assert main([
        "fuzz", "--cases", "4", "--seed", "3", "--families", "lattice",
        "--time-budget", "60",
        "--failures-dir", str(tmp_path / "failures"),
    ]) == 0
    out = capsys.readouterr().out
    assert "lattice" in out
    assert "power-law" not in out  # only the chosen family ran
    assert "4/4 cases" in out


def test_cli_fuzz_replay_missing_file(tmp_path, capsys):
    from repro.cli import main

    assert main(["fuzz", "--replay", str(tmp_path / "no.json")]) == 2
    assert "no such file" in capsys.readouterr().err


def test_cli_fuzz_rejects_bad_time_budget(capsys):
    from repro.cli import main

    assert main(["fuzz", "--time-budget", "-3"]) == 2
    assert "--time-budget" in capsys.readouterr().err


def test_cli_fuzz_replay_fixed_repro_reports_clean(tmp_path, capsys):
    """A repro whose bug has since been fixed replays as 'no longer
    reproduces' with exit code 0."""
    from repro.cli import main

    report = run_fuzz(
        seed=13, count=1, oracles=_broken_oracles(threshold=4),
        failures_dir=tmp_path,
    )
    path = report.failures[0].path
    assert main(["fuzz", "--replay", str(path)]) == 0
    out = capsys.readouterr().out
    assert "no longer reproduces" in out
