"""Tests for the flight recorder, trigger engine, and causal analysis.

The acceptance criteria of the incident subsystem live here: the ring
buffer's byte budget is an invariant checked after *every* append, and
the flagship end-to-end claim — running the ``shard_loss_write_burst``
library scenario drops a failover bundle whose top-ranked root cause
names the injected replica crash — is asserted against the real
scenario runner.
"""

from __future__ import annotations

import json

import pytest

from repro.observe.incident import (
    FlightRecorder,
    SLOBurnTrigger,
    TriggerEngine,
    analyze_bundle,
)
from repro.observe.incident.recorder import _encoded_size
from repro.observe.incident.report import (
    find_bundle,
    format_bundle_row,
    list_bundles,
    load_bundle,
    render_bundle,
    render_incident_report,
    summarize_bundle,
)
from repro.observe.slo import SLOSpec
from repro.scenarios import library_scenarios, run_scenario_file


# ----------------------------------------------------------------------
# FlightRecorder
# ----------------------------------------------------------------------

def test_recorder_byte_budget_is_invariant_after_every_append():
    # The acceptance criterion: the buffer never exceeds max_bytes, not
    # even transiently observable between records, and eviction is
    # accounted in `dropped`.
    recorder = FlightRecorder(max_bytes=2048)
    for i in range(500):
        recorder.record("serve.request", at=i * 1e-4, outcome="served",
                        trace_id=f"t-{i:06d}", latency_seconds=1e-6)
        assert recorder.bytes_used <= recorder.max_bytes
        assert recorder.bytes_used == sum(
            _encoded_size(r) for r in recorder.events()
        )
    assert recorder.dropped > 0
    assert recorder.recorded == 500
    assert recorder.dropped + len(recorder) == recorder.recorded
    # The survivors are the newest records, oldest first.
    ids = [r["id"] for r in recorder.events()]
    assert ids == sorted(ids)
    assert ids[-1] == 500


def test_recorder_window_eviction_keeps_only_recent_history():
    recorder = FlightRecorder(window_seconds=1.0)
    for i in range(10):
        recorder.record("tick", at=float(i))
    # clock is 9.0; only records with at >= 8.0 survive.
    assert [r["at"] for r in recorder.events()] == [8.0, 9.0]
    assert recorder.dropped == 8


def test_recorder_listener_and_store_event_adapter():
    recorder = FlightRecorder()
    seen = []
    recorder.add_listener(seen.append)
    record = recorder.record_event(
        {"event": "serve.failover", "at": 0.5, "shard": 1, "to_replica": 2}
    )
    assert seen == [record]
    assert record["event"] == "serve.failover"
    assert record["shard"] == 1
    assert record["id"] == 1
    assert recorder.clock == 0.5


def test_recorder_snapshot_is_self_contained():
    recorder = FlightRecorder(window_seconds=2.0, max_bytes=4096)
    recorder.record("a", at=0.1)
    snap = recorder.snapshot()
    assert snap["recorded"] == 1
    assert snap["max_bytes"] == 4096
    assert snap["window_seconds"] == 2.0
    assert snap["events"][0]["event"] == "a"


def test_recorder_rejects_bad_bounds():
    with pytest.raises(ValueError):
        FlightRecorder(window_seconds=0.0)
    with pytest.raises(ValueError):
        FlightRecorder(max_bytes=0)


# ----------------------------------------------------------------------
# SLOBurnTrigger
# ----------------------------------------------------------------------

def test_burn_trigger_needs_both_windows_over_threshold():
    spec = SLOSpec(name="avail", kind="availability", target=0.999)
    trigger = SLOBurnTrigger(spec, long_seconds=1.0, short_seconds=0.1,
                             min_samples=5)
    # Healthy traffic: never fires.
    for i in range(50):
        assert trigger.observe(i * 0.01, "served", 1e-6) is None
    # A shed burst pushes both windows over burn 14.4 at budget 0.001.
    state = None
    for i in range(50, 60):
        state = trigger.observe(i * 0.01, "shed", 0.0) or state
    assert state is not None
    assert state["slo"] == "avail"
    assert state["long_burn"] > 14.4
    assert state["short_burn"] > 14.4


def test_burn_trigger_silent_below_min_samples():
    spec = SLOSpec(name="avail", kind="availability", target=0.999)
    trigger = SLOBurnTrigger(spec, long_seconds=1.0, short_seconds=0.1,
                             min_samples=20)
    # 100% bad, but fewer than min_samples requests in the windows.
    for i in range(19):
        assert trigger.observe(i * 1e-3, "shed", 0.0) is None


# ----------------------------------------------------------------------
# TriggerEngine
# ----------------------------------------------------------------------

def _engine(tmp_path, **kwargs):
    recorder = FlightRecorder()
    engine = TriggerEngine(recorder, tmp_path, **kwargs)
    recorder.add_listener(engine.observe)
    return recorder, engine


def test_failover_record_cuts_a_bundle(tmp_path):
    recorder, engine = _engine(tmp_path, context={"scenario": "demo"})
    recorder.record("serve.replica_crash", at=0.1, shard=0, replica=0)
    recorder.record("serve.failover", at=0.2, shard=0,
                    from_replica=0, to_replica=1, version=7)
    assert [i["kind"] for i in engine.incidents] == ["failover"]
    bundle = load_bundle(engine.incidents[0]["path"])
    assert bundle["id"] == "incident-001-failover"
    assert bundle["details"] == {"shard": 0, "from_replica": 0,
                                 "to_replica": 1, "version": 7}
    assert bundle["context"] == {"scenario": "demo"}
    # The bundle is self-contained: the crash is inside it.
    assert [e["event"] for e in bundle["events"]] == [
        "serve.replica_crash", "serve.failover",
    ]
    assert bundle["evidence"] == [2]
    assert bundle["recorder"]["recorded"] == 2
    # Atomic write left no temp litter behind.
    assert sorted(p.name for p in tmp_path.iterdir()) == [
        "incident-001-failover.json"
    ]


def test_cooldown_suppresses_repeat_fires_of_same_kind(tmp_path):
    recorder, engine = _engine(tmp_path, cooldown_seconds=1.0)
    for i in range(5):
        recorder.record("serve.failover", at=0.1 + i * 0.01, shard=0,
                        from_replica=i, to_replica=i + 1)
    assert len(engine.incidents) == 1
    assert engine.suppressed == {"failover": 4}
    # A different kind is not throttled by the failover cooldown.
    recorder.record("serve.request", at=0.15, outcome="error",
                    reason="no serving replica", shard=0, trace_id="t-1")
    assert [i["kind"] for i in engine.incidents] == [
        "failover", "shard_unavailable",
    ]
    # Past the cooldown the same kind fires again.
    recorder.record("serve.failover", at=1.5, shard=1,
                    from_replica=0, to_replica=1)
    assert [i["kind"] for i in engine.incidents] == [
        "failover", "shard_unavailable", "failover",
    ]


def test_slo_burn_fires_through_the_engine(tmp_path):
    spec = SLOSpec(name="avail", kind="availability", target=0.99)
    recorder = FlightRecorder()
    # span 150 -> long window 5s, short window ~0.21s: with requests
    # every 0.01s the short window holds MIN_WINDOW_SAMPLES requests.
    engine = TriggerEngine(recorder, tmp_path, slos=[spec], span_hint=150.0)
    recorder.add_listener(engine.observe)
    for i in range(40):
        recorder.record("serve.request", at=i * 0.01, arrival=i * 0.01,
                        outcome="served", latency_seconds=1e-6)
    for i in range(40, 80):
        recorder.record("serve.request", at=i * 0.01, arrival=i * 0.01,
                        outcome="shed", latency_seconds=0.0)
    kinds = [i["kind"] for i in engine.incidents]
    assert "slo_burn" in kinds
    bundle = load_bundle(
        next(i for i in engine.incidents if i["kind"] == "slo_burn")["path"]
    )
    assert bundle["details"]["slo"] == "avail"
    assert bundle["details"]["long_burn"] > bundle["details"]["burn_threshold"]


def test_scenario_assertion_fire_writes_check_details(tmp_path):
    recorder, engine = _engine(tmp_path)
    path = engine.fire("scenario_assertion", 1.0, details={
        "checks": [{"name": "availability_min", "expected": 0.99,
                    "actual": 0.5}],
    })
    bundle = load_bundle(path)
    assert bundle["kind"] == "scenario_assertion"
    assert bundle["details"]["checks"][0]["name"] == "availability_min"


# ----------------------------------------------------------------------
# Causal analysis
# ----------------------------------------------------------------------

def _failover_bundle() -> dict:
    """A hand-built bundle: crash -> suspicion -> failover trigger."""
    events = [
        {"id": 1, "at": 0.010, "event": "serve.request", "outcome": "served",
         "trace_id": "t-1", "latency_seconds": 1e-6},
        {"id": 2, "at": 0.020, "event": "replica.lag", "lag": 3,
         "groups": {"1": 3}, "version": 9},
        {"id": 3, "at": 0.030, "event": "serve.replica_crash",
         "shard": 0, "replica": 0},
        {"id": 4, "at": 0.031, "event": "serve.request", "outcome": "shed",
         "trace_id": "t-2", "latency_seconds": 0.0},
        {"id": 5, "at": 0.032, "event": "serve.replica_suspected",
         "shard": 0, "replica": 0},
        {"id": 6, "at": 0.033, "event": "serve.failover", "shard": 0,
         "from_replica": 0, "to_replica": 1, "version": 12},
    ]
    return {
        "id": "incident-001-failover",
        "kind": "failover",
        "at": 0.033,
        "details": {"shard": 0, "from_replica": 0, "to_replica": 1,
                    "version": 12},
        "evidence": [6],
        "context": {"scenario": "demo"},
        "events": events,
    }


def test_analyze_ranks_injected_fault_first_with_full_chain():
    report = analyze_bundle(_failover_bundle())
    assert report.affected_shard == 0
    assert report.affected_replica == 0
    cause = report.root_cause
    assert cause.kind == "injected_fault"
    # Base 0.60 + shard match 0.20 + replica match 0.15.
    assert cause.score == pytest.approx(0.95)
    assert cause.evidence == [3, 5, 6]
    assert cause.chain[0].startswith("injected crash #3")
    assert "failover #6 to replica 1" in cause.chain
    assert cause.chain[-1].startswith("failover trigger")
    # Lag and the shed request rank below the fault.
    kinds = [c.kind for c in report.causes]
    assert kinds.index("injected_fault") < kinds.index("replication_lag")
    assert kinds.index("injected_fault") < kinds.index("overload")


def test_analyze_timeline_is_ordered_and_ends_at_trigger():
    report = analyze_bundle(_failover_bundle())
    ats = [entry.at for entry in report.timeline]
    assert ats == sorted(ats)
    assert report.timeline[-1].label.startswith("TRIGGER failover")
    rendered = report.render()
    assert "primary 0 -> 1 (log version 12)" in rendered
    assert "replication lag peaked at 3 ops" in rendered


def test_analyze_empty_bundle_is_honestly_unattributed():
    report = analyze_bundle({"id": "incident-001-slo_burn",
                             "kind": "slo_burn", "at": 1.0, "events": []})
    assert report.root_cause.kind == "unattributed"
    assert report.root_cause.score == pytest.approx(0.05)


def test_analyze_regression_window_counts_bad_requests():
    bundle = _failover_bundle()
    report = analyze_bundle(bundle)
    # Only the shed request is in the window (too few served samples
    # for a latency-outlier threshold).
    assert report.bad_requests == 1
    assert report.total_requests == 2
    assert report.regression_start == pytest.approx(0.031)


# ----------------------------------------------------------------------
# Bundle IO / presentation
# ----------------------------------------------------------------------

def test_list_bundles_skips_non_bundle_json(tmp_path):
    recorder, engine = _engine(tmp_path)
    recorder.record("serve.failover", at=0.1, shard=0, from_replica=0,
                    to_replica=1)
    (tmp_path / "report.json").write_text(json.dumps({"makespan": 1.0}))
    (tmp_path / "broken.json").write_text("{nope")
    bundles = list_bundles(tmp_path)
    assert [b["id"] for _, b in bundles] == ["incident-001-failover"]


def test_find_bundle_by_id_prefix_and_errors(tmp_path):
    recorder, engine = _engine(tmp_path, cooldown_seconds=0.0)
    recorder.record("serve.failover", at=0.1, shard=0, from_replica=0,
                    to_replica=1)
    recorder.record("serve.failover", at=0.2, shard=1, from_replica=0,
                    to_replica=1)
    assert find_bundle("incident-002", tmp_path).name == (
        "incident-002-failover.json"
    )
    with pytest.raises(FileNotFoundError, match="ambiguous"):
        find_bundle("incident-0", tmp_path)
    with pytest.raises(FileNotFoundError, match="no incident bundle"):
        find_bundle("incident-9", tmp_path)


def test_summary_row_and_renderers_cover_the_bundle(tmp_path):
    bundle = _failover_bundle()
    summary = summarize_bundle(bundle)
    assert summary["root_cause_kind"] == "injected_fault"
    row = format_bundle_row(summary)
    assert "incident-001-failover" in row
    assert "[demo]" in row
    assert "-> injected replica crash" in row
    shown = render_bundle(bundle)
    assert "serve.replica_crash" in shown
    assert "6 buffered" in shown
    assert "incident-001-failover" in render_incident_report(bundle)


# ----------------------------------------------------------------------
# The flagship end-to-end claim
# ----------------------------------------------------------------------

def test_shard_loss_scenario_names_the_injected_crash(tmp_path):
    spec_path = library_scenarios()["shard_loss_write_burst"]
    result = run_scenario_file(spec_path, incident_dir=tmp_path)
    assert result.incidents, "scenario produced no incident bundles"
    failovers = [i for i in result.incidents if i["kind"] == "failover"]
    assert failovers, "no failover bundle was cut"
    bundle = load_bundle(failovers[0]["path"])
    report = analyze_bundle(bundle)
    cause = report.root_cause
    assert cause.kind == "injected_fault"
    assert "injected replica crash" in cause.description
    assert report.affected_shard is not None
    # The chain walks crash -> failover -> trigger over real event ids.
    assert any("failover #" in step for step in cause.chain)
    assert cause.evidence, "root cause cites no events"
    crash_ids = {
        e["id"] for e in bundle["events"]
        if e["event"] == "serve.replica_crash"
    }
    assert crash_ids & set(cause.evidence)
