"""Tests for the serving-tier fault plan and injector."""

import pytest

from repro.core.build import build_index
from repro.graph.generators import random_dag
from repro.pregel.cost_model import CostModel
from repro.serve import (
    ReplicaCrash,
    ReplicaRecovery,
    ReplicaSlow,
    ReplicatedLabelStore,
    ServeFaultInjector,
    ServeFaultPlan,
    ServeFaultSpecError,
)

_NO_LIMIT = CostModel(time_limit_seconds=None)


def test_parse_round_trips_through_to_spec():
    spec = "crash=0.1@0.002,slow=1.0x6@0.001:0.004,recover=0.1@0.005"
    plan = ServeFaultPlan.parse(spec)
    assert len(plan.crashes) == 1
    assert plan.crashes[0] == ReplicaCrash(0, 1, 0.002)
    assert plan.slowdowns[0] == ReplicaSlow(1, 0, 6.0, 0.001, 0.004)
    assert plan.recoveries[0] == ReplicaRecovery(0, 1, 0.005)
    assert ServeFaultPlan.parse(plan.to_spec()) == plan


def test_parse_open_ended_slowdown():
    plan = ServeFaultPlan.parse("slow=2.1x3@0.01")
    assert plan.slowdowns[0].until_seconds is None
    assert ServeFaultPlan.parse(plan.to_spec()) == plan


def test_empty_spec_is_empty_plan():
    plan = ServeFaultPlan.parse("")
    assert plan.empty
    assert plan.to_spec() == ""
    assert plan.describe() == "no serve faults"


@pytest.mark.parametrize(
    "spec",
    [
        "crash",                # no '='
        "crash=0@0.1",          # target missing replica part
        "explode=0.0@0.1",      # unknown clause
        "slow=0.0@0.1",         # missing xFACTOR
        "slow=0.0x@0.1",        # unparsable factor
        "crash=0.0@nope",       # unparsable time
    ],
)
def test_malformed_specs_rejected(spec):
    with pytest.raises(ServeFaultSpecError):
        ServeFaultPlan.parse(spec)


def test_plan_consistency_validation():
    with pytest.raises(ValueError, match="more than once"):
        ServeFaultPlan(crashes=(
            ReplicaCrash(0, 0, 0.1), ReplicaCrash(0, 0, 0.2),
        ))
    with pytest.raises(ValueError, match="never crashes"):
        ServeFaultPlan(recoveries=(ReplicaRecovery(0, 0, 0.1),))
    with pytest.raises(ValueError, match="before it crashes"):
        ServeFaultPlan(
            crashes=(ReplicaCrash(0, 0, 0.2),),
            recoveries=(ReplicaRecovery(0, 0, 0.1),),
        )


def test_validate_for_checks_layout():
    plan = ServeFaultPlan.parse("crash=3.1@0.1")
    plan.validate_for(num_shards=4, replicas=2)
    with pytest.raises(ValueError, match="shard 3"):
        plan.validate_for(num_shards=2, replicas=2)
    with pytest.raises(ValueError, match="replica 1"):
        plan.validate_for(num_shards=4, replicas=1)


def test_event_field_validation():
    with pytest.raises(ValueError):
        ReplicaCrash(-1, 0, 0.1)
    with pytest.raises(ValueError):
        ReplicaCrash(0, 0, -0.1)
    with pytest.raises(ValueError):
        ReplicaSlow(0, 0, 0.0, 0.1)  # factor must be positive
    with pytest.raises(ValueError):
        ReplicaSlow(0, 0, 2.0, 0.2, 0.1)  # until before start


@pytest.fixture()
def store():
    graph = random_dag(80, 200, seed=17)
    index = build_index(graph, cost_model=_NO_LIMIT).index
    return ReplicatedLabelStore(
        index, num_shards=2, cost_model=_NO_LIMIT, replicas=2
    )


def test_injector_fires_events_in_clock_order(store):
    plan = ServeFaultPlan.parse(
        "crash=0.0@0.002,slow=1.1x4@0.001:0.003,recover=0.0@0.004"
    )
    injector = ServeFaultInjector(plan, store)
    # slow start, crash, slow reset, recover
    assert injector.pending == 4

    assert injector.advance(0.001) == 1
    assert store.replica_sets[1].replicas[1].slowdown == 4.0

    assert injector.advance(0.002) == 1
    assert not store.replica_sets[0].replicas[0].alive

    assert injector.advance(0.003) == 1
    assert store.replica_sets[1].replicas[1].slowdown == 1.0

    assert injector.advance(0.004) == 1
    assert store.replica_sets[0].replicas[0].alive
    assert injector.pending == 0

    names = [e["event"] for e in store.events]
    assert names[:2] == ["serve.replica_slow", "serve.replica_crash"]


def test_injector_catches_up_after_a_gap(store):
    plan = ServeFaultPlan.parse("crash=0.0@0.001,recover=0.0@0.002")
    injector = ServeFaultInjector(plan, store)
    # One big clock jump applies everything that became due.
    assert injector.advance(1.0) == 2
    assert store.replica_sets[0].replicas[0].alive
    assert injector.pending == 0
    # Idempotent once drained.
    assert injector.advance(2.0) == 0


def test_injector_advances_store_clock(store):
    injector = ServeFaultInjector(ServeFaultPlan(), store)
    injector.advance(0.25)
    assert store.clock == 0.25
