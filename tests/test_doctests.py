"""Run the executable examples embedded in docstrings."""

import doctest

import repro


def test_package_docstring_examples():
    results = doctest.testmod(repro, verbose=False)
    assert results.attempted >= 3
    assert results.failed == 0
