"""Tests for repro.profiling: node timelines, skew analysis, exporters."""

import json

import pytest

from repro.core.drl import drl_index
from repro.core.drl_basic import drl_basic_index
from repro.core.drl_batch import drl_batch_index
from repro.faults import FaultPlan
from repro.graph.generators import random_digraph
from repro.pregel.cost_model import CostModel
from repro.pregel.engine import Cluster
from repro.pregel.metrics import NodeSlice, NodeTimeline, RunStats
from repro.pregel.vertex_program import VertexProgram
from repro.profiling import (
    analyze_skew,
    chrome_trace,
    critical_path,
    folded_stacks,
    profile_report,
    timeline_from_records,
    write_chrome_trace,
)
from repro.telemetry import session
from repro.telemetry.sinks import InMemorySink, JsonlSink
from repro.telemetry.report import read_trace

_NO_LIMIT = CostModel(time_limit_seconds=None)


class _Flood(VertexProgram):
    def __init__(self):
        self.visited: set[int] = set()

    def compute(self, ctx, v, messages):
        if ctx.superstep == 1 and v != 0:
            return
        if v in self.visited:
            return
        self.visited.add(v)
        for w in ctx.graph.out_neighbors(v):
            ctx.charge()
            ctx.send(w, None)


@pytest.fixture(scope="module")
def graph():
    return random_digraph(120, 480, seed=11)


# ----------------------------------------------------------------------
# Timeline recording in the engine
# ----------------------------------------------------------------------
def test_timeline_off_by_default(graph):
    stats = Cluster(num_nodes=4, cost_model=_NO_LIMIT).run(graph, _Flood())
    assert stats.node_timeline is None


def test_timeline_slices_sum_to_run_totals(graph):
    stats = Cluster(num_nodes=4, cost_model=_NO_LIMIT).run(
        graph, _Flood(), node_timeline=True
    )
    timeline = stats.node_timeline
    assert timeline is not None
    assert timeline.num_nodes == 4
    assert len(timeline.supersteps()) == stats.supersteps
    totals = timeline.node_totals()
    assert [t["units"] for t in totals] == stats.per_node_units
    assert sum(t["units"] for t in totals) == stats.compute_units
    # Each node's lane covers the same wall of simulated time, equal to
    # the run's comp+comm+barrier total (waits absorb the slack).
    expected = (
        stats.computation_seconds
        + stats.communication_seconds
        + stats.barrier_seconds
    )
    for entry in totals:
        assert entry["total_seconds"] == pytest.approx(expected)
    # Waits are non-negative slack; within a super-step every node's lane
    # spans the same simulated interval.  (No node is guaranteed zero wait:
    # the compute-heaviest and comm-heaviest node may differ.)
    for group in timeline.supersteps():
        assert all(p.barrier_wait_seconds >= 0 for p in group)
        span = {p.total_seconds for p in group}
        assert max(span) == pytest.approx(min(span))


def test_timeline_wait_is_nonnegative_and_slowdown_recorded(graph):
    plan = FaultPlan.parse("straggler=2x4.0")
    cluster = Cluster(num_nodes=4, cost_model=_NO_LIMIT, faults=plan)
    stats = cluster.run(graph, _Flood(), node_timeline=True)
    for piece in stats.node_timeline.slices:
        assert piece.barrier_wait_seconds >= 0
        assert piece.slowdown == (4.0 if piece.node == 2 else 1.0)


def test_timeline_records_finalize_pass(graph):
    class _Finalizing(_Flood):
        def finalize(self, fctx):
            for v in range(fctx.graph.num_vertices):
                fctx.charge(v)

    stats = Cluster(num_nodes=4, cost_model=_NO_LIMIT).run(
        graph, _Finalizing(), node_timeline=True
    )
    groups = stats.node_timeline.supersteps()
    assert len(groups) == stats.supersteps  # finalize counts as one
    last = groups[-1]
    assert all(piece.comm_seconds == 0.0 for piece in last)
    assert sum(piece.units for piece in last) == graph.num_vertices


def test_timeline_records_fault_intervals(graph):
    plan = FaultPlan.parse("crash=1@3")
    cluster = Cluster(
        num_nodes=4, cost_model=_NO_LIMIT, faults=plan, checkpoint_interval=2
    )
    stats = cluster.run(graph, _Flood(), node_timeline=True)
    assert stats.crashes == 1
    kinds = {i.kind for i in stats.node_timeline.intervals}
    assert "recovery" in kinds and "checkpoint" in kinds and "replay" in kinds
    recovery = next(
        i for i in stats.node_timeline.intervals if i.kind == "recovery"
    )
    assert recovery.nodes == (1,)
    accounted = sum(
        i.seconds
        for i in stats.node_timeline.intervals
        if i.kind in ("recovery", "replay")
    )
    assert accounted == pytest.approx(stats.recovery_seconds)
    checkpointed = sum(
        i.seconds
        for i in stats.node_timeline.intervals
        if i.kind == "checkpoint"
    )
    assert checkpointed == pytest.approx(stats.checkpoint_seconds)


def test_timeline_merges_across_chained_runs(graph):
    result = drl_batch_index(
        graph, num_nodes=4, cost_model=_NO_LIMIT, node_timeline=True
    )
    stats = result.stats
    timeline = stats.node_timeline
    assert timeline is not None
    assert len(timeline.supersteps()) == stats.supersteps
    assert [t["units"] for t in timeline.node_totals()] == stats.per_node_units


def test_timeline_via_builders(graph):
    for builder in (drl_index, drl_basic_index):
        result = builder(
            graph, num_nodes=4, cost_model=_NO_LIMIT, node_timeline=True
        )
        assert result.stats.node_timeline is not None
        assert result.stats.node_timeline.slices
        off = builder(graph, num_nodes=4, cost_model=_NO_LIMIT)
        assert off.stats.node_timeline is None


def test_node_events_emitted_under_session(graph):
    sink = InMemorySink()
    with session([sink]):
        stats = Cluster(num_nodes=4, cost_model=_NO_LIMIT).run(
            graph, _Flood()
        )
    node_events = [e for e in sink.events if e.name == "pregel.node"]
    assert len(node_events) == 4 * stats.supersteps
    assert stats.node_timeline is None  # events != the opt-in timeline
    assert sum(e.attrs["units"] for e in node_events) == stats.compute_units


def test_runstats_merge_concatenates_timelines():
    a = RunStats(num_nodes=2)
    a.node_timeline = NodeTimeline(num_nodes=2)
    a.node_timeline.slices.append(
        NodeSlice(1, 0, 5, 1.0, 0.5, 0.0, 0.1, 64)
    )
    b = RunStats(num_nodes=2)
    b.node_timeline = NodeTimeline(num_nodes=2)
    b.node_timeline.slices.append(
        NodeSlice(1, 1, 3, 0.6, 0.2, 0.7, 0.1, 32)
    )
    a.merge(b)
    assert len(a.node_timeline.slices) == 2


# ----------------------------------------------------------------------
# Skew analysis
# ----------------------------------------------------------------------
def test_skew_names_straggler_and_estimates_rebalance(graph):
    plan = FaultPlan.parse("straggler=2x4.0")
    result = drl_batch_index(
        graph,
        num_nodes=4,
        cost_model=_NO_LIMIT,
        faults=plan,
        node_timeline=True,
    )
    report = analyze_skew(result.stats.node_timeline)
    assert report.dominant_straggler == 2
    assert report.stragglers[0][1] == pytest.approx(4.0)
    assert not report.balanced
    assert report.rebalance_speedup > 1.0
    for load in report.node_loads:
        if load.node != 2:
            assert load.wait_share > 0
    assert "node 2 (4.0x)" in report.render()


def test_skew_clean_run_is_balanced(graph):
    result = drl_batch_index(
        graph, num_nodes=4, cost_model=_NO_LIMIT, node_timeline=True
    )
    report = analyze_skew(result.stats.node_timeline)
    assert report.dominant_straggler is None
    assert report.balanced
    assert report.gini < 0.1
    assert 0 <= report.barrier_wait_share < 0.2
    assert sum(l.busy_share for l in report.node_loads) == pytest.approx(1.0)


def test_timeline_from_records_matches_live_timeline(graph, tmp_path):
    path = tmp_path / "trace.jsonl"
    with session([JsonlSink(path)]):
        live = Cluster(num_nodes=4, cost_model=_NO_LIMIT).run(
            graph, _Flood(), node_timeline=True
        )
    rebuilt = timeline_from_records(read_trace(path))
    assert rebuilt is not None
    assert rebuilt.num_nodes == 4
    assert len(rebuilt.slices) == len(live.node_timeline.slices)
    for ours, theirs in zip(rebuilt.slices, live.node_timeline.slices):
        assert ours.node == theirs.node
        assert ours.units == theirs.units
        assert ours.compute_seconds == pytest.approx(theirs.compute_seconds)
        assert ours.barrier_wait_seconds == pytest.approx(
            theirs.barrier_wait_seconds
        )


def test_timeline_from_records_empty_without_node_events():
    assert timeline_from_records([{"kind": "span", "name": "a"}]) is None


# ----------------------------------------------------------------------
# Exporters
# ----------------------------------------------------------------------
@pytest.fixture()
def trace_records(graph, tmp_path):
    path = tmp_path / "trace.jsonl"
    with session([JsonlSink(path)]):
        stats = Cluster(num_nodes=4, cost_model=_NO_LIMIT).run(
            graph, _Flood(), node_timeline=True
        )
    return read_trace(path), stats


def test_chrome_trace_one_process_per_node(trace_records):
    records, stats = trace_records
    doc = chrome_trace(records)
    names = {
        e["args"]["name"]
        for e in doc["traceEvents"]
        if e["ph"] == "M" and e["name"] == "process_name"
    }
    assert names == {
        "driver (wall clock)",
        "node 0 (simulated)",
        "node 1 (simulated)",
        "node 2 (simulated)",
        "node 3 (simulated)",
    }


def test_chrome_trace_node_totals_match_timeline(trace_records):
    records, stats = trace_records
    events = chrome_trace(records)["traceEvents"]
    totals = stats.node_timeline.node_totals()
    for node in range(4):
        lane_us = sum(
            e["dur"]
            for e in events
            if e["ph"] == "X" and e["pid"] == node + 1
        )
        assert lane_us == pytest.approx(totals[node]["total_seconds"] * 1e6)


def test_chrome_trace_wall_timestamps_normalized(trace_records):
    records, _ = trace_records
    events = chrome_trace(records)["traceEvents"]
    driver = [e for e in events if e["ph"] == "X" and e["pid"] == 0]
    assert driver
    assert min(e["ts"] for e in driver) == pytest.approx(0.0, abs=1e-6)
    assert all(e["ts"] >= 0 for e in driver)


def test_chrome_trace_is_valid_json(trace_records, tmp_path):
    records, _ = trace_records
    out = tmp_path / "chrome.json"
    write_chrome_trace(records, out)
    doc = json.loads(out.read_text())
    assert isinstance(doc["traceEvents"], list) and doc["traceEvents"]


def test_folded_stacks_nest_and_weight(tmp_path, graph):
    path = tmp_path / "trace.jsonl"
    with session([JsonlSink(path)]):
        drl_batch_index(graph, num_nodes=4, cost_model=_NO_LIMIT)
    lines = folded_stacks(read_trace(path))
    assert lines
    stacked = [line for line in lines if ";" in line]
    assert any("drl_b.build;drl_b.batch;pregel.run" in line for line in stacked)
    for line in lines:
        _, value = line.rsplit(" ", 1)
        assert int(value) > 0


# ----------------------------------------------------------------------
# Report
# ----------------------------------------------------------------------
def test_critical_path_follows_heaviest_children(tmp_path, graph):
    path = tmp_path / "trace.jsonl"
    with session([JsonlSink(path)]):
        drl_batch_index(graph, num_nodes=4, cost_model=_NO_LIMIT)
    chain = critical_path(read_trace(path))
    names = [name for name, _ in chain]
    assert names[0] == "drl_b.build"
    assert "pregel.run" in names
    assert critical_path([]) == []


def test_profile_report_sections(trace_records):
    records, _ = trace_records
    text = profile_report(records)
    assert "Skew report" in text
    assert "Top spans by simulated time" in text
    assert "Critical path" in text
