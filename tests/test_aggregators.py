"""Tests for Pregel aggregators."""

from repro.graph.digraph import DiGraph
from repro.pregel.aggregator import (
    Aggregator,
    any_aggregator,
    max_aggregator,
    min_aggregator,
    sum_aggregator,
)
from repro.pregel.engine import Cluster
from repro.pregel.vertex_program import VertexProgram


class DegreeStatsProgram(VertexProgram):
    """Aggregates max degree and vertex count in super-step 1, reads
    the combined values in super-step 2."""

    def __init__(self):
        self.seen_max = None
        self.seen_count = None

    def aggregators(self):
        return {"max-deg": max_aggregator(), "count": sum_aggregator()}

    def compute(self, ctx, v, messages):
        if ctx.superstep == 1:
            ctx.aggregate("max-deg", ctx.graph.out_degree(v))
            ctx.aggregate("count", 1)
            if v == 0:
                ctx.send(0, "wake up")  # force a second super-step
        elif v == 0:
            self.seen_max = ctx.aggregated("max-deg")
            self.seen_count = ctx.aggregated("count")


def test_aggregates_visible_next_superstep():
    g = DiGraph(5, [(0, 1), (0, 2), (0, 3), (1, 2)])
    program = DegreeStatsProgram()
    Cluster(num_nodes=2).run(g, program)
    assert program.seen_max == 3
    assert program.seen_count == 5


def test_identity_before_first_barrier():
    class Probe(VertexProgram):
        def __init__(self):
            self.initial_value = None

        def aggregators(self):
            return {"sum": sum_aggregator()}

        def compute(self, ctx, v, messages):
            if ctx.superstep == 1 and v == 0:
                self.initial_value = ctx.aggregated("sum")

    g = DiGraph(2, [])
    program = Probe()
    Cluster(num_nodes=1).run(g, program)
    assert program.initial_value == 0


def test_aggregation_charges_broadcast_on_clusters():
    g = DiGraph(4, [(0, 1)])

    class Contribute(VertexProgram):
        def aggregators(self):
            return {"sum": sum_aggregator()}

        def compute(self, ctx, v, messages):
            if ctx.superstep == 1:
                ctx.aggregate("sum", 1)

    single = Cluster(num_nodes=1).run(g, Contribute())
    multi = Cluster(num_nodes=4).run(g, Contribute())
    assert single.broadcast_bytes == 0
    assert multi.broadcast_bytes > 0


def test_prebuilt_aggregators():
    assert min_aggregator().combine(3, 5) == 3
    assert max_aggregator().combine(3, 5) == 5
    assert sum_aggregator().combine(3, 5) == 8
    assert any_aggregator().combine(False, True) is True
    assert any_aggregator().initial is False
    custom = Aggregator("", lambda a, b: a + b)
    assert custom.combine("a", "b") == "ab"
