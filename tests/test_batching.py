"""Tests for batch sequences (Definition 7)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.batching import batch_sequence, validate_batch_sequence
from repro.graph.digraph import DiGraph
from repro.graph.order import VertexOrder, degree_order


def _order(n: int) -> VertexOrder:
    return VertexOrder(list(range(n)))


def test_default_parameters_geometric():
    batches = batch_sequence(_order(11))
    assert [len(b) for b in batches] == [2, 4, 5]


def test_batch_size_one_k_one_is_tol_schedule():
    batches = batch_sequence(_order(5), initial_size=1, growth_factor=1)
    assert [len(b) for b in batches] == [1, 1, 1, 1, 1]


def test_batch_size_n_is_drl_schedule():
    batches = batch_sequence(_order(5), initial_size=5)
    assert len(batches) == 1
    assert len(batches[0]) == 5


def test_fractional_growth():
    batches = batch_sequence(_order(20), initial_size=2, growth_factor=1.5)
    assert [len(b) for b in batches] == [2, 3, 4, 6, 5]


def test_huge_initial_size_capped():
    batches = batch_sequence(_order(3), initial_size=100)
    assert [len(b) for b in batches] == [3]


def test_invalid_parameters():
    with pytest.raises(ValueError):
        batch_sequence(_order(4), initial_size=0)
    with pytest.raises(ValueError):
        batch_sequence(_order(4), growth_factor=0.5)


def test_batches_ordered_by_rank():
    order = VertexOrder([3, 1, 2, 0])  # ranks: v3 highest
    batches = batch_sequence(order, initial_size=2)
    assert batches[0] == [3, 1]
    assert batches[1] == [2, 0]


def test_empty_order():
    assert batch_sequence(_order(0)) == []


@settings(max_examples=50, deadline=None)
@given(
    st.integers(min_value=1, max_value=40),
    st.integers(min_value=1, max_value=10),
    st.floats(min_value=1.0, max_value=4.0),
)
def test_property_valid_batch_sequence(n, b, k):
    order = _order(n)
    batches = batch_sequence(order, initial_size=b, growth_factor=k)
    validate_batch_sequence(batches, order)  # raises on violation
    assert sum(len(batch) for batch in batches) == n
    if k > 1:
        # Sizes are non-decreasing except possibly the final remainder.
        sizes = [len(batch) for batch in batches]
        assert all(sizes[i] <= sizes[i + 1] for i in range(len(sizes) - 2))


def test_validate_rejects_bad_sequences():
    order = _order(4)
    with pytest.raises(ValueError, match="empty"):
        validate_batch_sequence([[0], []], order)
    with pytest.raises(ValueError, match="two batches"):
        validate_batch_sequence([[0, 1], [2, 2, 3]], order)
    with pytest.raises(ValueError, match="higher order"):
        validate_batch_sequence([[2, 3], [0, 1]], order)
    with pytest.raises(ValueError, match="cover"):
        validate_batch_sequence([[0, 1]], order)


def test_validate_accepts_paper_example():
    order = _order(11)
    validate_batch_sequence(
        [[0, 1], [2, 3, 4, 5], [6, 7, 8, 9, 10]], order
    )
