"""Tests for index validation, compressed serialization, inverted-list
statistics, and the distributed index backend."""

from array import array

import pytest
from hypothesis import given, settings

from repro.core.build import build_index
from repro.core.drl import inverted_list_stats
from repro.core.labels import ReachabilityIndex
from repro.core.validate import check_canonical, check_cover, check_soundness
from repro.graph.digraph import DiGraph
from repro.graph.generators import random_digraph, social_graph
from repro.graph.order import degree_order
from repro.pregel.cost_model import CostModel
from repro.query import DistributedIndexBackend, IndexBackend, QueryService
from tests.conftest import digraphs

_NO_LIMIT = CostModel(time_limit_seconds=None)


# ----------------------------------------------------------------------
# Validation
# ----------------------------------------------------------------------
def test_valid_index_passes_all_checks():
    g = random_digraph(40, 120, seed=1)
    order = degree_order(g)
    index = build_index(g, order=order, cost_model=_NO_LIMIT).index
    assert check_cover(index, g).ok
    assert check_soundness(index, g).ok
    assert check_canonical(index, g, order).ok


def test_cover_detects_missing_reachability():
    g = DiGraph(2, [(0, 1)])
    broken = ReachabilityIndex.from_label_lists([[0], [1]], [[0], [1]])
    report = check_cover(broken, g)
    assert not report.ok
    assert any("misses" in v for v in report.violations)


def test_cover_detects_fabricated_reachability():
    g = DiGraph(2, [])
    broken = ReachabilityIndex.from_label_lists([[0], [0]], [[0], [1]])
    report = check_cover(broken, g)
    assert not report.ok
    assert any("fabricates" in v for v in report.violations)


def test_cover_sampled_mode():
    g = random_digraph(50, 150, seed=2)
    index = build_index(g, cost_model=_NO_LIMIT).index
    report = check_cover(index, g, sample=500, seed=3)
    assert report.ok
    assert report.checked == 500


def test_report_counts_suppressed_violations():
    """Regression: violations past the message cap used to vanish —
    only the first 20 were kept and the rest left no trace.  They must
    now be counted, fail the report, and show up in ``str()``."""
    from repro.core.validate import MAX_MESSAGES, ValidationReport

    report = ValidationReport()
    total = MAX_MESSAGES + 15
    for i in range(total):
        report.checked += 1
        report.add(f"violation {i}")
    assert len(report.violations) == MAX_MESSAGES
    assert report.suppressed == 15
    assert report.total_violations == total
    assert not report.ok
    rendered = str(report)
    assert f"{total} violations" in rendered
    assert "15 suppressed" in rendered


def test_report_suppression_from_a_real_check():
    """An index that misses *every* pair overflows the message cap; the
    overflow must be reported, not silently dropped."""
    n = 12
    g = DiGraph(n, [(u, u + 1) for u in range(n - 1)])
    empty = ReachabilityIndex.from_label_lists(
        [[] for _ in range(n)], [[] for _ in range(n)]
    )
    report = check_cover(empty, g)
    assert report.suppressed > 0
    assert report.total_violations == len(report.violations) + report.suppressed
    assert "suppressed" in str(report)


def test_report_str_when_clean():
    from repro.core.validate import ValidationReport

    report = ValidationReport(checked=7)
    assert report.ok
    assert str(report) == "OK (7 checked)"


def test_cover_rejects_size_mismatch():
    g = DiGraph(3, [])
    index = ReachabilityIndex.from_label_lists([[0]], [[0]])
    assert not check_cover(index, g).ok


def test_soundness_detects_bogus_entry():
    g = DiGraph(2, [])
    bogus = ReachabilityIndex.from_label_lists([[0], [0, 1]], [[0], [1]])
    report = check_soundness(bogus, g)
    assert not report.ok


def test_canonical_detects_redundant_entry():
    """A sound but non-minimal index fails the canonical check."""
    g = DiGraph(3, [(0, 1), (1, 2)])
    order = degree_order(g)
    exact = build_index(g, order=order, cost_model=_NO_LIMIT).index
    padded_in = [list(exact.in_labels(v)) for v in range(3)]
    padded_out = [list(exact.out_labels(v)) for v in range(3)]
    # Add a redundant (but sound) entry: 0 reaches 2 via 1's labels.
    hub = padded_in[2][0]
    for extra in range(3):
        if extra not in padded_in[2] and extra != hub:
            from repro.baselines.transitive_closure import TransitiveClosure

            if TransitiveClosure(g).query(extra, 2):
                padded_in[2].append(extra)
                break
    padded = ReachabilityIndex.from_label_lists(padded_in, padded_out)
    if padded != exact:  # only if we actually padded something
        assert check_soundness(padded, g).ok
        assert not check_canonical(padded, g, order).ok


@settings(max_examples=20, deadline=None)
@given(digraphs(max_vertices=14))
def test_property_built_indexes_always_validate(g):
    order = degree_order(g)
    index = build_index(g, order=order, num_nodes=3, cost_model=_NO_LIMIT).index
    assert check_cover(index, g).ok
    assert check_canonical(index, g, order).ok


# ----------------------------------------------------------------------
# Compressed serialization
# ----------------------------------------------------------------------
def test_compressed_round_trip(tmp_path):
    g = social_graph(400, seed=4)
    index = build_index(g, cost_model=_NO_LIMIT).index
    path = tmp_path / "compressed.idx"
    index.save(path, compress=True)
    assert ReachabilityIndex.load(path) == index


def test_compression_shrinks_file(tmp_path):
    g = social_graph(500, seed=5)
    index = build_index(g, cost_model=_NO_LIMIT).index
    raw = tmp_path / "raw.idx"
    packed = tmp_path / "packed.idx"
    index.save(raw)
    index.save(packed, compress=True)
    assert packed.stat().st_size < raw.stat().st_size / 2


def test_compressed_empty_index(tmp_path):
    index = ReachabilityIndex.from_label_lists([], [])
    path = tmp_path / "empty.idx"
    index.save(path, compress=True)
    assert ReachabilityIndex.load(path).num_vertices == 0


def test_compressed_handles_large_vertex_ids(tmp_path):
    """Varint encoding must survive multi-byte deltas."""
    huge = 2**50
    index = ReachabilityIndex.from_label_lists(
        [[3, huge, huge + 1], []], [[], [0, 2**20, huge]]
    )
    path = tmp_path / "huge.idx"
    index.save(path, compress=True)
    reloaded = ReachabilityIndex.load(path)
    assert reloaded == index
    assert list(reloaded.in_labels(0)) == [3, huge, huge + 1]


def test_compressed_truncation_detected(tmp_path):
    g = random_digraph(30, 90, seed=6)
    index = build_index(g, cost_model=_NO_LIMIT).index
    path = tmp_path / "trunc.idx"
    index.save(path, compress=True)
    path.write_bytes(path.read_bytes()[:-3])
    with pytest.raises(ValueError, match="truncated"):
        ReachabilityIndex.load(path)


@settings(max_examples=20, deadline=None)
@given(digraphs())
def test_property_compressed_round_trip(tmp_path_factory, g):
    index = build_index(g, cost_model=_NO_LIMIT).index
    path = tmp_path_factory.mktemp("cmp") / "index.idx"
    index.save(path, compress=True)
    assert ReachabilityIndex.load(path) == index


# ----------------------------------------------------------------------
# Inverted-list statistics (the paper's Section III-D remark)
# ----------------------------------------------------------------------
def test_inverted_lists_small_relative_to_vertex_count():
    """The paper reports avg |IBFS_low(v)| < 1 at billion-edge scale;
    at our ~10³× smaller scale the average is larger in absolute terms
    but remains a tiny fraction of |V| — which is the property that
    makes sharing the lists (Lemma 7) and Check probes (Lemma 6) cheap."""
    g = social_graph(800, seed=7)
    stats = inverted_list_stats(g, cost_model=_NO_LIMIT)
    assert stats["avg_ibfs"] < g.num_vertices / 30
    assert stats["max_ibfs"] >= stats["avg_ibfs"]
    assert stats["avg_forward"] >= 0.0


# ----------------------------------------------------------------------
# Distributed index backend
# ----------------------------------------------------------------------
def test_distributed_backend_same_answers_higher_cost():
    g = social_graph(300, seed=8)
    index = build_index(g, cost_model=_NO_LIMIT).index
    local = QueryService(IndexBackend(index, _NO_LIMIT))
    remote = QueryService(
        DistributedIndexBackend(index, num_nodes=16, cost_model=_NO_LIMIT)
    )
    from repro.workloads.queries import random_pairs

    pairs = random_pairs(g.num_vertices, 200, seed=9)
    local_report = local.evaluate(pairs)
    remote_report = remote.evaluate(pairs)
    assert local_report.positives == remote_report.positives
    assert remote_report.mean_seconds > local_report.mean_seconds


def test_distributed_backend_single_node_costs_like_local():
    g = social_graph(200, seed=10)
    index = build_index(g, cost_model=_NO_LIMIT).index
    backend = DistributedIndexBackend(index, num_nodes=1, cost_model=_NO_LIMIT)
    answer, seconds = backend.query_with_cost(0, 100)
    _expected, local_seconds = IndexBackend(index, _NO_LIMIT).query_with_cost(0, 100)
    assert seconds == pytest.approx(local_seconds)
