"""Tests for the opt-in Pregel message combiner."""

from repro.core.drl import drl_index
from repro.core.drl_batch import drl_batch_index
from repro.core.tol import tol_index_reference
from repro.graph.digraph import DiGraph
from repro.graph.generators import random_digraph, web_graph
from repro.graph.order import degree_order
from repro.pregel.cost_model import CostModel
from repro.pregel.engine import Cluster
from repro.pregel.vertex_program import VertexProgram

_NO_LIMIT = CostModel(time_limit_seconds=None)


class ChattyProgram(VertexProgram):
    """Sends the same payload to vertex 1 three times per super-step."""

    combine_duplicates = True

    def __init__(self):
        self.received = 0

    def compute(self, ctx, v, messages):
        self.received += len(messages)
        if ctx.superstep == 1 and v == 0:
            for _ in range(3):
                ctx.send(1, "hello")
            ctx.send(1, "world")


class ChattyNoCombine(ChattyProgram):
    combine_duplicates = False


def test_combiner_drops_duplicates():
    g = DiGraph(2, [(0, 1)])
    combined = ChattyProgram()
    stats = Cluster(num_nodes=1).run(g, combined)
    assert combined.received == 2  # "hello" once + "world"
    assert stats.total_messages == 2

    plain = ChattyNoCombine()
    stats = Cluster(num_nodes=1).run(g, plain)
    assert plain.received == 4
    assert stats.total_messages == 4


def test_combiner_scope_is_one_superstep():
    class TwoStep(VertexProgram):
        combine_duplicates = True

        def __init__(self):
            self.received = 0

        def compute(self, ctx, v, messages):
            self.received += len(messages)
            if v == 0 and ctx.superstep <= 2:
                ctx.send(1, "ping")
                ctx.send(0, "loop")  # keeps vertex 0 active for step 2

    g = DiGraph(2, [])
    program = TwoStep()
    Cluster(num_nodes=1).run(g, program)
    # "ping" sent in two different supersteps: both delivered.
    assert program.received >= 2


def test_drl_with_combiner_same_index_fewer_messages():
    g = web_graph(800, seed=5)
    order = degree_order(g)
    plain = drl_index(g, order, num_nodes=8, cost_model=_NO_LIMIT)
    combined = drl_index(
        g, order, num_nodes=8, cost_model=_NO_LIMIT, combine_messages=True
    )
    assert combined.index == plain.index == tol_index_reference(g, order)
    assert combined.stats.total_messages <= plain.stats.total_messages


def test_drl_batch_with_combiner_exact():
    g = random_digraph(100, 400, seed=6)
    order = degree_order(g)
    result = drl_batch_index(
        g, order, num_nodes=4, cost_model=_NO_LIMIT, combine_messages=True
    )
    assert result.index == tol_index_reference(g, order)
