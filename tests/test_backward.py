"""Tests for the filtering-and-refinement framework (Theorems 1-4)."""

from hypothesis import given, settings

from repro.core.backward import (
    backward_in_labels_basic,
    backward_in_labels_improved,
    backward_in_labels_naive,
    backward_label_sets,
    higher_order_descendants,
)
from repro.core.labels import ReachabilityIndex
from repro.core.tol import tol_index_reference
from repro.graph.digraph import DiGraph
from repro.graph.order import VertexOrder, degree_order
from repro.graph.traversal import reachable_set
from tests.conftest import digraphs


def test_higher_order_descendants_definition_5():
    g = DiGraph(3, [(0, 1), (1, 2)])
    order = VertexOrder([1, 0, 2])  # ord(1) > ord(0) > ord(2)
    assert higher_order_descendants(g, 0, order) == {1}
    assert higher_order_descendants(g, 1, order) == set()
    assert higher_order_descendants(g, 2, order) == set()


def test_backward_sets_of_isolated_vertex():
    g = DiGraph(2, [])
    order = VertexOrder([0, 1])
    assert backward_in_labels_naive(g, 0, order) == {0}
    assert backward_in_labels_basic(g, 1, order) == {1}


def test_highest_order_vertex_owns_its_descendants():
    g = DiGraph(4, [(0, 1), (1, 2), (2, 3)])
    order = VertexOrder([0, 1, 2, 3])
    assert backward_in_labels_naive(g, 0, order) == {0, 1, 2, 3}


def test_self_excluded_when_cycle_has_higher_vertex():
    """Theorem 1 with w = v: a higher-order vertex on a cycle through
    v removes v from its own backward set."""
    g = DiGraph(2, [(0, 1), (1, 0)])
    order = VertexOrder([1, 0])  # vertex 1 is higher order
    assert backward_in_labels_naive(g, 0, order) == set()
    assert backward_in_labels_basic(g, 0, order) == set()
    assert backward_in_labels_improved(g, order)[0] == set()


@settings(max_examples=50, deadline=None)
@given(digraphs())
def test_property_theorems_2_3_4_agree(g):
    order = degree_order(g)
    improved = backward_in_labels_improved(g, order)
    for v in range(g.num_vertices):
        naive = backward_in_labels_naive(g, v, order)
        basic = backward_in_labels_basic(g, v, order)
        assert naive == basic == improved[v], v


@settings(max_examples=40, deadline=None)
@given(digraphs())
def test_property_backward_sets_invert_to_tol_index(g):
    order = degree_order(g)
    backward_in, backward_out = backward_label_sets(g, order)
    rebuilt = ReachabilityIndex.from_backward_sets(
        g.num_vertices, backward_in, backward_out
    )
    assert rebuilt == tol_index_reference(g, order)


@settings(max_examples=40, deadline=None)
@given(digraphs())
def test_property_theorem_1_direct(g):
    """w ∈ L⁻_in(v) iff v is the highest-order vertex on every v-w walk.

    The walk criterion is checked independently: w survives iff w is
    reachable from v using only vertices of order < ord(v) (apart from
    v itself) AND no higher-order vertex u satisfies v -> u -> w.
    """
    order = degree_order(g)
    improved = backward_in_labels_improved(g, order)
    reach = {v: reachable_set(g, v) for v in g.vertices()}
    for v in range(g.num_vertices):
        for w in range(g.num_vertices):
            higher_on_walk = any(
                order.higher(u, v) and u in reach[v] and w in reach[u]
                for u in g.vertices()
            )
            expected = w in reach[v] and not higher_on_walk
            assert (w in improved[v]) == expected, (v, w)


@settings(max_examples=30, deadline=None)
@given(digraphs())
def test_property_out_direction_is_in_on_reverse(g):
    order = degree_order(g)
    _, backward_out = backward_label_sets(g, order)
    reverse_in = backward_in_labels_improved(g.reverse(), order)
    assert backward_out == reverse_in
