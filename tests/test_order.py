"""Tests for vertex orders."""

import pytest
from hypothesis import given, settings

from repro.graph.digraph import DiGraph
from repro.graph.order import (
    ORDER_STRATEGIES,
    VertexOrder,
    degree_order,
    degree_sum_order,
    in_degree_order,
    out_degree_order,
    random_order,
)
from tests.conftest import digraphs


def test_vertex_order_basic():
    order = VertexOrder([2, 0, 1])
    assert order.rank(2) == 0
    assert order.rank(0) == 1
    assert order.rank(1) == 2
    assert order.vertex_at_rank(0) == 2
    assert list(order.by_rank()) == [2, 0, 1]
    assert len(order) == 3


def test_higher_means_smaller_rank():
    order = VertexOrder([2, 0, 1])
    assert order.higher(2, 0)
    assert order.higher(0, 1)
    assert not order.higher(1, 2)
    assert not order.higher(2, 2)


def test_non_permutation_rejected():
    with pytest.raises(ValueError):
        VertexOrder([0, 0, 1])
    with pytest.raises(ValueError):
        VertexOrder([0, 3, 1])


def test_order_equality_and_hash():
    a = VertexOrder([1, 0])
    b = VertexOrder([1, 0])
    c = VertexOrder([0, 1])
    assert a == b
    assert a != c
    assert hash(a) == hash(b)
    assert a.__eq__("x") is NotImplemented


def test_degree_order_formula():
    """ord(v) = (d_in+1)(d_out+1) + id/(n+1): bigger product first,
    bigger id wins ties."""
    # Vertex 0: product (1+1)(1+1)=4; vertex 1: (1+1)(1+1)=4;
    # vertex 2: (2+1)(2+1)=9 using a 3-cycle plus extra edges on 2.
    g = DiGraph(3, [(0, 1), (1, 2), (2, 0), (2, 1), (0, 2)])
    # degrees: 0: in 1 out 2 -> 6; 1: in 2 out 1 -> 6; 2: in 2 out 2 -> 9
    order = degree_order(g)
    assert order.vertex_at_rank(0) == 2
    # tie between 0 and 1 (product 6): larger id (1) is higher order.
    assert order.vertex_at_rank(1) == 1
    assert order.vertex_at_rank(2) == 0


def test_degree_order_ties_broken_by_id():
    g = DiGraph(4, [])  # all degrees zero: pure id order
    order = degree_order(g)
    assert list(order.by_rank()) == [3, 2, 1, 0]


def test_alternative_orders_are_valid_permutations():
    g = DiGraph(5, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 0), (0, 2)])
    for factory in (out_degree_order, in_degree_order, degree_sum_order):
        order = factory(g)
        assert sorted(order.by_rank()) == list(range(5))


def test_random_order_seeded():
    g = DiGraph(20, [])
    assert random_order(g, seed=1) == random_order(g, seed=1)
    assert random_order(g, seed=1) != random_order(g, seed=2)


def test_strategy_registry():
    assert set(ORDER_STRATEGIES) == {
        "degree",
        "out-degree",
        "in-degree",
        "degree-sum",
        "random",
    }
    g = DiGraph(4, [(0, 1)])
    for factory in ORDER_STRATEGIES.values():
        assert sorted(factory(g).by_rank()) == [0, 1, 2, 3]


@settings(max_examples=40, deadline=None)
@given(digraphs())
def test_property_degree_order_is_total_and_consistent(g):
    order = degree_order(g)
    ranks = [order.rank(v) for v in g.vertices()]
    assert sorted(ranks) == list(range(g.num_vertices))
    product = lambda v: (g.in_degree(v) + 1) * (g.out_degree(v) + 1)
    for rank in range(g.num_vertices - 1):
        u = order.vertex_at_rank(rank)
        v = order.vertex_at_rank(rank + 1)
        assert (product(u), u) > (product(v), v)
