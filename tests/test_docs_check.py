"""Tests for tools/check_docs.py — the docs-example executor."""

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "tools"))

import check_docs  # noqa: E402  (path bootstrap above)


def _write(tmp_path, text):
    path = tmp_path / "doc.md"
    path.write_text(text, encoding="utf-8")
    return path


# ----------------------------------------------------------------------
# Block parsing
# ----------------------------------------------------------------------
def test_parse_blocks_languages_and_lines(tmp_path):
    path = _write(
        tmp_path,
        "# Title\n"
        "```python\nx = 1\n```\n"
        "text\n"
        "```bash\necho hi\n```\n"
        "```\nplain\n```\n",
    )
    blocks, _ = check_docs.parse_blocks(path)
    assert [(b.lang, b.line) for b in blocks] == [
        ("python", 2), ("bash", 6), ("", 9)
    ]
    assert blocks[0].body == ["x = 1"]


def test_parse_blocks_marker_directly_above(tmp_path):
    path = _write(
        tmp_path,
        "<!-- docs-check: skip -->\n```bash\nrepro bench fig5\n```\n",
    )
    blocks, _ = check_docs.parse_blocks(path)
    assert blocks[0].marker == "skip"


def test_parse_blocks_marker_two_lines_above(tmp_path):
    path = _write(
        tmp_path,
        "<!-- docs-check: run -->\n\n```python\nprint(1)\n```\n",
    )
    blocks, _ = check_docs.parse_blocks(path)
    assert blocks[0].marker == "run"


def test_parse_blocks_marker_blocked_by_prose(tmp_path):
    # Prose between the marker and the fence detaches the marker.
    path = _write(
        tmp_path,
        "<!-- docs-check: skip -->\nSome prose.\n```bash\nrepro x\n```\n",
    )
    blocks, _ = check_docs.parse_blocks(path)
    assert blocks[0].marker is None


def test_parse_blocks_tilde_fences_and_nesting(tmp_path):
    # A ``` line inside a ~~~ fence is content, not a closer.
    path = _write(tmp_path, "~~~\n```bash\nnot a block\n```\n~~~\n")
    blocks, _ = check_docs.parse_blocks(path)
    assert len(blocks) == 1
    assert blocks[0].body == ["```bash", "not a block", "```"]


# ----------------------------------------------------------------------
# Command extraction
# ----------------------------------------------------------------------
def _block(lang, body):
    return check_docs.CodeBlock(Path("x.md"), 1, lang, body)


def test_console_blocks_take_only_dollar_lines():
    block = _block("console", [
        "$ repro trace fig5.jsonl",
        "285 records: 74 spans",
        "$ repro datasets",
    ])
    assert check_docs.shell_commands(block) == [
        "repro trace fig5.jsonl", "repro datasets",
    ]


def test_bash_blocks_skip_comments_and_blanks():
    block = _block("bash", ["# setup", "", "python -m repro datasets"])
    assert check_docs.shell_commands(block) == ["python -m repro datasets"]


def test_backslash_continuations_are_joined():
    block = _block("bash", ["repro build g.txt \\", "    -o g.idx"])
    assert check_docs.shell_commands(block) == ["repro build g.txt -o g.idx"]


def test_console_continuation():
    block = _block("console", ["$ repro build g.txt \\", "      --nodes 4"])
    assert check_docs.shell_commands(block) == ["repro build g.txt --nodes 4"]


@pytest.mark.parametrize("command,expected", [
    ("repro datasets", "python -m repro datasets"),
    ("python -m repro bench fig5", "python -m repro bench fig5"),
    ("pip install -e .", None),
    ("pytest tests/", None),
    ("reproduce.sh", None),  # prefix match must not catch this
])
def test_runnable_form(command, expected):
    assert check_docs.runnable_form(command) == expected


# ----------------------------------------------------------------------
# check_file end to end
# ----------------------------------------------------------------------
def test_python_syntax_error_is_a_failure(tmp_path):
    path = _write(tmp_path, "```python\ndef broken(:\n```\n")
    report = check_docs.check_file(path)
    assert len(report.failures) == 1
    assert "does not compile" in report.failures[0].what


def test_python_block_compiles_but_does_not_execute_by_default(tmp_path):
    path = _write(tmp_path, "```python\nraise RuntimeError('boom')\n```\n")
    report = check_docs.check_file(path)
    assert report.blocks_compiled == 1
    assert report.blocks_executed == 0
    assert not report.failures


def test_run_marker_executes_python_block(tmp_path):
    path = _write(
        tmp_path,
        "<!-- docs-check: run -->\n"
        "```python\nimport repro  # needs the PYTHONPATH the checker sets\n```\n",
    )
    report = check_docs.check_file(path)
    assert report.blocks_executed == 1
    assert not report.failures


def test_run_marker_reports_execution_failure(tmp_path):
    path = _write(
        tmp_path,
        "<!-- docs-check: run -->\n```python\nraise RuntimeError('boom')\n```\n",
    )
    report = check_docs.check_file(path)
    assert report.failures and "python block" in report.failures[0].what


def test_skip_marker_suppresses_commands(tmp_path):
    path = _write(
        tmp_path,
        "<!-- docs-check: skip -->\n```bash\nrepro replay nope.json\n```\n",
    )
    report = check_docs.check_file(path)
    assert report.commands_run == 0 and not report.failures


def test_non_repro_commands_are_skipped_not_run(tmp_path):
    path = _write(tmp_path, "```bash\npip install -e .\nfalse\n```\n")
    report = check_docs.check_file(path)
    assert report.commands_skipped == 2
    assert report.commands_run == 0 and not report.failures


def test_failing_repro_command_is_reported(tmp_path):
    path = _write(tmp_path, "```bash\nrepro no-such-subcommand\n```\n")
    report = check_docs.check_file(path)
    assert report.commands_run == 1
    assert report.failures and "command exited" in report.failures[0].what


def test_commands_share_a_workdir_in_order(tmp_path):
    path = _write(
        tmp_path,
        "```bash\n"
        "repro generate g.txt --kind social -n 50 --seed 1\n"
        "```\n"
        "later...\n"
        "```bash\n"
        "repro analyze g.txt\n"
        "```\n",
    )
    report = check_docs.check_file(path)
    assert report.commands_run == 2
    assert not report.failures


# ----------------------------------------------------------------------
# Links
# ----------------------------------------------------------------------
def test_relative_links_resolved_and_broken_ones_fail(tmp_path):
    (tmp_path / "other.md").write_text("x")
    path = _write(
        tmp_path,
        "[ok](other.md) [anchored](other.md#section) [web](https://x.test)\n"
        "[broken](missing.md)\n",
    )
    report = check_docs.check_file(path)
    assert report.links_checked == 3  # web link not counted
    assert len(report.failures) == 1
    assert "missing.md" in report.failures[0].what


def test_links_inside_code_fences_ignored(tmp_path):
    path = _write(tmp_path, "```\n[not a link](nowhere.md)\n```\n")
    report = check_docs.check_file(path)
    assert report.links_checked == 0 and not report.failures


# ----------------------------------------------------------------------
# main()
# ----------------------------------------------------------------------
def test_main_exit_codes(tmp_path, capsys):
    good = _write(tmp_path, "fine\n")
    assert check_docs.main([str(good)]) == 0
    bad = tmp_path / "bad.md"
    bad.write_text("[broken](gone.md)\n")
    assert check_docs.main([str(good), str(bad)]) == 1
    out = capsys.readouterr().out
    assert "ok" in out and "FAIL" in out


def test_main_missing_file(tmp_path, capsys):
    assert check_docs.main([str(tmp_path / "ghost.md")]) == 1
    assert "no such file" in capsys.readouterr().err


def test_main_list_mode_runs_nothing(tmp_path, capsys):
    path = _write(tmp_path, "```bash\nrepro datasets\n```\n")
    assert check_docs.main(["--list", str(path)]) == 0
    assert "would run" in capsys.readouterr().out


def test_cli_table_coverage_passes_on_real_docs():
    failures = check_docs.check_cli_table(
        check_docs.REPO_ROOT / "docs" / "api.md"
    )
    assert failures == []


def test_cli_table_coverage_flags_missing_subcommand(tmp_path):
    api = tmp_path / "api.md"
    api.write_text("| Command | Purpose |\n|---|---|\n| `build` | x |\n")
    failures = check_docs.check_cli_table(api)
    missing = {f.what.split("`")[1] for f in failures}
    assert "query" in missing and "serve-bench" in missing
    assert "build" not in missing
