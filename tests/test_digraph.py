"""Unit tests for the CSR DiGraph."""

import pytest
from hypothesis import given, settings

from repro.graph.digraph import DiGraph
from tests.conftest import digraphs


def test_empty_graph():
    g = DiGraph(0, [])
    assert g.num_vertices == 0
    assert g.num_edges == 0
    assert list(g.edges()) == []


def test_single_vertex_no_edges():
    g = DiGraph(1, [])
    assert g.num_vertices == 1
    assert list(g.out_neighbors(0)) == []
    assert list(g.in_neighbors(0)) == []
    assert g.out_degree(0) == 0
    assert g.in_degree(0) == 0


def test_basic_adjacency():
    g = DiGraph(4, [(0, 1), (0, 2), (1, 2), (3, 0)])
    assert g.num_edges == 4
    assert sorted(g.out_neighbors(0)) == [1, 2]
    assert list(g.out_neighbors(3)) == [0]
    assert sorted(g.in_neighbors(2)) == [0, 1]
    assert sorted(g.in_neighbors(0)) == [3]
    assert g.out_degree(0) == 2
    assert g.in_degree(2) == 2


def test_has_edge():
    g = DiGraph(3, [(0, 1), (1, 2)])
    assert g.has_edge(0, 1)
    assert not g.has_edge(1, 0)
    assert not g.has_edge(0, 2)


def test_parallel_edges_are_kept():
    g = DiGraph(2, [(0, 1), (0, 1)])
    assert g.num_edges == 2
    assert list(g.out_neighbors(0)) == [1, 1]


def test_self_loop_allowed():
    g = DiGraph(2, [(0, 0)])
    assert g.has_edge(0, 0)
    assert g.in_degree(0) == g.out_degree(0) == 1


def test_out_of_range_edge_rejected():
    with pytest.raises(ValueError):
        DiGraph(2, [(0, 2)])
    with pytest.raises(ValueError):
        DiGraph(2, [(-1, 0)])


def test_negative_vertex_count_rejected():
    with pytest.raises(ValueError):
        DiGraph(-1, [])


def test_edges_iteration_source_major():
    edges = [(2, 0), (0, 1), (1, 2), (0, 2)]
    g = DiGraph(3, edges)
    listed = list(g.edges())
    assert sorted(listed) == sorted(edges)
    # Source-major order.
    assert [u for u, _ in listed] == sorted(u for u, _ in edges)


def test_reverse_swaps_directions():
    g = DiGraph(3, [(0, 1), (1, 2)])
    r = g.reverse()
    assert sorted(r.edges()) == [(1, 0), (2, 1)]
    assert list(r.out_neighbors(1)) == [0]
    assert list(r.in_neighbors(1)) == [2]


def test_reverse_is_view_cheap_and_involutive():
    g = DiGraph(4, [(0, 1), (2, 3), (3, 0)])
    assert g.reverse().reverse() == g


def test_equality_ignores_edge_order():
    a = DiGraph(3, [(0, 1), (1, 2)])
    b = DiGraph(3, [(1, 2), (0, 1)])
    assert a == b
    assert a != DiGraph(3, [(0, 1)])
    assert a != DiGraph(4, [(0, 1), (1, 2)])
    assert a.__eq__(42) is NotImplemented


def test_edge_fraction_bounds():
    g = DiGraph(5, [(0, 1), (1, 2), (2, 3), (3, 4)])
    assert g.edge_fraction(0.0).num_edges == 0
    assert g.edge_fraction(1.0).num_edges == 4
    assert g.edge_fraction(0.5).num_edges == 2
    with pytest.raises(ValueError):
        g.edge_fraction(1.5)
    with pytest.raises(ValueError):
        g.edge_fraction(-0.1)


def test_edge_fraction_prefix_property():
    """The i-th test graph contains the (i-1)-th's edges (Exp 6)."""
    g = DiGraph(20, [(i, (i + 1) % 20) for i in range(20)])
    previous: set = set()
    for fraction in (0.2, 0.4, 0.6, 0.8, 1.0):
        edges = set(g.edge_fraction(fraction, seed=3).edges())
        assert previous <= edges
        previous = edges


def test_edge_fraction_deterministic():
    g = DiGraph(10, [(i, (i + 3) % 10) for i in range(10)])
    a = g.edge_fraction(0.5, seed=1)
    b = g.edge_fraction(0.5, seed=1)
    assert a == b


def test_induced_subgraph():
    g = DiGraph(4, [(0, 1), (1, 2), (2, 3)])
    sub = g.induced_subgraph([True, True, False, True])
    assert sub.num_vertices == 4  # ids preserved
    assert sorted(sub.edges()) == [(0, 1)]
    with pytest.raises(ValueError):
        g.induced_subgraph([True])


def test_memory_bytes_positive_and_monotone():
    small = DiGraph(10, [(0, 1)])
    large = DiGraph(10, [(i, (i + 1) % 10) for i in range(10)])
    assert 0 < small.memory_bytes() < large.memory_bytes()


@settings(max_examples=40, deadline=None)
@given(digraphs())
def test_property_degree_sums_match_edge_count(g):
    assert sum(g.out_degree(v) for v in g.vertices()) == g.num_edges
    assert sum(g.in_degree(v) for v in g.vertices()) == g.num_edges


@settings(max_examples=40, deadline=None)
@given(digraphs())
def test_property_reverse_preserves_edge_multiset(g):
    assert sorted(g.reverse().edges()) == sorted((v, u) for u, v in g.edges())


@settings(max_examples=40, deadline=None)
@given(digraphs())
def test_property_neighbor_consistency(g):
    for u, v in g.edges():
        assert v in g.out_neighbors(u)
        assert u in g.in_neighbors(v)
