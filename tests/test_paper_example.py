"""End-to-end verification of every worked example in the paper on the
Fig. 1 graph: Tables II and III, Examples 2, 7, 8, and 12."""

import pytest

from repro.core import (
    backward_in_labels_basic,
    backward_in_labels_naive,
    backward_label_sets,
    batch_sequence,
    drl_basic_index,
    drl_batch_index,
    drl_index,
    drl_multicore_index,
    tol_index,
    tol_index_reference,
)
from repro.graph.traversal import trimmed_bfs
from tests.conftest import TABLE_II_IN, TABLE_II_OUT, TABLE_III_IN, TABLE_III_OUT


def _as_paper(values):
    """Convert 0-indexed vertex ids to the paper's 1-indexed names."""
    return {x + 1 for x in values}


def test_table_ii_via_tol_reference(paper_graph, paper_order):
    index = tol_index_reference(paper_graph, paper_order)
    for v in range(11):
        assert _as_paper(index.in_labels(v)) == TABLE_II_IN[v + 1]
        assert _as_paper(index.out_labels(v)) == TABLE_II_OUT[v + 1]


def test_table_ii_via_optimized_tol(paper_graph, paper_order):
    assert tol_index(paper_graph, paper_order) == tol_index_reference(
        paper_graph, paper_order
    )


def test_example_2_query(paper_graph, paper_order):
    """Example 2: q(v2, v3) is true via common label v2."""
    index = tol_index(paper_graph, paper_order)
    assert index.query(1, 2)
    assert index.hop_vertex(1, 2) == 1  # the hop is v2 itself


def test_table_iii_backward_sets(paper_graph, paper_order):
    backward_in, backward_out = backward_label_sets(paper_graph, paper_order)
    for v in range(11):
        assert _as_paper(backward_in[v]) == TABLE_III_IN[v + 1], f"v{v+1}"
        assert _as_paper(backward_out[v]) == TABLE_III_OUT[v + 1], f"v{v+1}"


def test_example_7_naive_refinement(paper_graph, paper_order):
    """Example 7: L⁻_in(v3) = ∅ via Theorem 2."""
    assert backward_in_labels_naive(paper_graph, 2, paper_order) == set()


def test_theorem_3_on_every_vertex(paper_graph, paper_order):
    for v in range(11):
        assert backward_in_labels_basic(paper_graph, v, paper_order) == {
            x - 1 for x in TABLE_III_IN[v + 1]
        }


def test_example_8_trimmed_bfs(paper_graph, paper_order):
    result = trimmed_bfs(paper_graph, 2, paper_order)
    assert _as_paper(result.low) == {3, 4, 6, 10, 11}
    assert _as_paper(result.high) == {1, 2}


def test_example_12_batch_sequence(paper_order):
    """b = k = 2 gives [ {v1,v2}, {v3..v6}, {v7..v11} ]."""
    batches = batch_sequence(paper_order, initial_size=2, growth_factor=2)
    assert [_as_paper(batch) for batch in batches] == [
        {1, 2},
        {3, 4, 5, 6},
        {7, 8, 9, 10, 11},
    ]


@pytest.mark.parametrize("num_nodes", [1, 2, 32])
def test_all_distributed_methods_reproduce_table_ii(
    paper_graph, paper_order, num_nodes
):
    expected = tol_index_reference(paper_graph, paper_order)
    assert drl_index(paper_graph, paper_order, num_nodes=num_nodes).index == expected
    assert (
        drl_basic_index(paper_graph, paper_order, num_nodes=num_nodes).index
        == expected
    )
    assert (
        drl_batch_index(paper_graph, paper_order, num_nodes=num_nodes).index
        == expected
    )


def test_multicore_reproduces_table_ii(paper_graph, paper_order):
    expected = tol_index_reference(paper_graph, paper_order)
    assert drl_multicore_index(paper_graph, paper_order).index == expected


def test_cover_constraint_on_paper_graph(paper_graph, paper_order):
    """Definition 3 checked against BFS ground truth for all 121 pairs."""
    from repro.graph.traversal import reachable_set

    index = tol_index(paper_graph, paper_order)
    for s in range(11):
        descendants = reachable_set(paper_graph, s)
        for t in range(11):
            assert index.query(s, t) == (t in descendants), (s + 1, t + 1)
