"""Tests for the declarative SLO engine and burn-rate alerts."""

import json

import pytest

from repro.observe.slo import (
    BurnWindow,
    SLOSpec,
    default_windows,
    evaluate_slo,
    evaluate_slos,
    load_slo_specs,
)


class _Request:
    def __init__(self, arrival, outcome="served", latency_seconds=0.0):
        self.arrival = arrival
        self.outcome = outcome
        self.latency_seconds = latency_seconds


def _availability(target=0.9, windows=()):
    return SLOSpec("avail", "availability", target, windows=tuple(windows))


class TestSpecs:
    def test_validation(self):
        with pytest.raises(ValueError, match="kind"):
            SLOSpec("x", "throughput", 0.9)
        with pytest.raises(ValueError, match="target"):
            SLOSpec("x", "availability", 1.0)
        with pytest.raises(ValueError, match="threshold"):
            SLOSpec("x", "latency", 0.9)
        with pytest.raises(ValueError):
            BurnWindow(1.0, 2.0, 14.4)  # short > long
        with pytest.raises(ValueError):
            BurnWindow(1.0, 0.5, 0.0)

    def test_good_request_predicates(self):
        avail = _availability()
        assert avail.is_good("served", 100.0)
        assert not avail.is_good("shed", 0.0)
        assert not avail.is_good("deadline", 0.0)
        lat = SLOSpec("p99", "latency", 0.99, threshold_seconds=1e-3)
        assert lat.is_good("served", 1e-4)
        assert not lat.is_good("served", 1e-2)
        assert not lat.is_good("shed", 0.0)

    def test_budget(self):
        assert _availability(0.999).budget == pytest.approx(0.001)

    def test_round_trip(self):
        spec = SLOSpec(
            "p99", "latency", 0.99, threshold_seconds=1e-3,
            windows=(BurnWindow(10.0, 1.0, 14.4, "page"),),
        )
        again = SLOSpec.from_dict(spec.to_dict())
        assert again == spec

    def test_from_dict_missing_field(self):
        with pytest.raises(ValueError, match="missing field"):
            SLOSpec.from_dict({"name": "x", "kind": "availability"})

    def test_load_specs_file(self, tmp_path):
        path = tmp_path / "slo.json"
        path.write_text(json.dumps({"slos": [
            {"name": "a", "kind": "availability", "target": 0.9},
        ]}))
        specs = load_slo_specs(path)
        assert [s.name for s in specs] == ["a"]
        path.write_text(json.dumps([]))
        with pytest.raises(ValueError, match="non-empty"):
            load_slo_specs(path)

    def test_default_windows_scale_with_span(self):
        page, ticket = default_windows(720.0)
        assert page.long_seconds == pytest.approx(24.0)
        assert page.short_seconds == pytest.approx(1.0)
        assert page.burn_threshold == 14.4
        assert ticket.severity == "ticket"


class TestEvaluation:
    def test_compliance_and_budget(self):
        spec = _availability(target=0.9)
        requests = [_Request(i / 10) for i in range(90)]
        requests += [_Request(9 + i / 10, outcome="shed") for i in range(10)]
        status = evaluate_slo(spec, requests)
        assert status.total == 100
        assert status.good == 90
        assert status.compliance == pytest.approx(0.9)
        assert status.budget_consumed == pytest.approx(1.0)  # exactly spent

    def test_no_traffic_is_compliant(self):
        status = evaluate_slo(_availability(), [])
        assert status.compliance == 1.0
        assert status.budget_consumed == 0.0
        assert status.ok

    def test_alert_fires_when_both_windows_burn(self):
        window = BurnWindow(10.0, 1.0, burn_threshold=2.0)
        spec = _availability(target=0.9, windows=[window])
        # Bad traffic throughout: both windows see 100% bad => burn 10.
        requests = [
            _Request(i * 0.1, outcome="shed") for i in range(100)
        ]
        status = evaluate_slo(spec, requests)
        (burn,) = status.burn_rates
        assert burn.long_burn == pytest.approx(10.0)
        assert burn.short_burn == pytest.approx(10.0)
        assert burn.firing
        assert not status.ok

    def test_alert_needs_the_short_window_too(self):
        window = BurnWindow(10.0, 1.0, burn_threshold=2.0)
        spec = _availability(target=0.9, windows=[window])
        # An old incident: bad requests early, clean recent traffic.
        requests = [_Request(i * 0.1, outcome="shed") for i in range(50)]
        requests += [_Request(5 + i * 0.1) for i in range(50)]
        status = evaluate_slo(spec, requests, end_time=9.9)
        (burn,) = status.burn_rates
        assert burn.long_burn > 2.0     # the long window still remembers
        assert burn.short_burn == 0.0   # the short window has drained
        assert not burn.firing          # so the alert has cleared
        assert status.ok

    def test_firing_then_clearing_over_time(self):
        window = BurnWindow(4.0, 0.5, burn_threshold=2.0)
        spec = _availability(target=0.9, windows=[window])
        requests = [_Request(i * 0.1, outcome="shed") for i in range(20)]
        requests += [_Request(2 + i * 0.1) for i in range(60)]
        during = evaluate_slo(spec, requests, end_time=1.9)
        after = evaluate_slo(spec, requests, end_time=6.0)
        assert during.burn_rates[0].firing
        assert not after.burn_rates[0].firing

    def test_empty_window_burn_is_zero(self):
        window = BurnWindow(10.0, 1.0, burn_threshold=2.0)
        spec = _availability(windows=[window])
        requests = [_Request(0.0, outcome="shed")]
        status = evaluate_slo(spec, requests, end_time=100.0)
        assert status.burn_rates[0].short_burn == 0.0
        assert status.burn_rates[0].long_burn == 0.0

    def test_latency_slo_counts_slow_as_bad(self):
        spec = SLOSpec("p99", "latency", 0.5, threshold_seconds=1.0)
        requests = [
            _Request(0.0, latency_seconds=0.5),
            _Request(1.0, latency_seconds=2.0),
        ]
        status = evaluate_slo(spec, requests)
        assert status.good == 1
        assert status.bad == 1

    def test_evaluate_slos_and_serialization(self):
        specs = [
            _availability(windows=[BurnWindow(10.0, 1.0, 2.0)]),
            SLOSpec("p99", "latency", 0.99, threshold_seconds=1e-3),
        ]
        requests = [_Request(i * 0.1) for i in range(50)]
        statuses = evaluate_slos(specs, requests)
        assert len(statuses) == 2
        payload = statuses[0].to_dict()
        assert payload["slo"] == "avail"
        assert payload["ok"] is True
        assert payload["alerts"][0]["firing"] is False
        assert "OK" in statuses[0].summary()
