"""Tests for dynamic TOL-index maintenance.

The exactness contract: after any sequence of insertions and deletions,
``snapshot()`` equals ``tol_index(current_graph, original_order)`` —
the index TOL would build from scratch under the fixed order.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.transitive_closure import TransitiveClosure
from repro.core.dynamic import DynamicReachabilityIndex
from repro.core.tol import tol_index
from repro.graph.digraph import DiGraph
from repro.graph.generators import random_digraph
from repro.graph.order import VertexOrder, degree_order
from tests.conftest import digraphs


def _assert_exact(dynamic: DynamicReachabilityIndex) -> None:
    expected = tol_index(dynamic.current_graph(), dynamic.order)
    assert dynamic.snapshot() == expected


# ----------------------------------------------------------------------
# Basic operations
# ----------------------------------------------------------------------
def test_initial_index_matches_tol():
    g = random_digraph(30, 90, seed=1)
    dynamic = DynamicReachabilityIndex(g)
    assert dynamic.snapshot() == tol_index(g, degree_order(g))
    assert dynamic.num_edges == 90


def test_insert_simple_edge():
    g = DiGraph(3, [(0, 1)])
    dynamic = DynamicReachabilityIndex(g, VertexOrder([0, 1, 2]))
    assert not dynamic.query(1, 2)
    assert dynamic.insert_edge(1, 2)
    assert dynamic.query(1, 2)
    assert dynamic.query(0, 2)
    _assert_exact(dynamic)


def test_insert_existing_edge_is_noop():
    g = DiGraph(2, [(0, 1)])
    dynamic = DynamicReachabilityIndex(g)
    assert not dynamic.insert_edge(0, 1)
    _assert_exact(dynamic)


def test_insert_rejects_self_loop_and_bad_vertex():
    dynamic = DynamicReachabilityIndex(DiGraph(2, []))
    with pytest.raises(ValueError):
        dynamic.insert_edge(0, 0)
    with pytest.raises(ValueError):
        dynamic.insert_edge(0, 5)


def test_insert_creating_cycle_invalidates_self_labels():
    """Closing a cycle under a higher-order vertex must strip the
    lower vertex's self-labels (the paper's cyclic-graph semantics)."""
    g = DiGraph(2, [(0, 1)])
    order = VertexOrder([0, 1])  # vertex 0 is higher order
    dynamic = DynamicReachabilityIndex(g, order)
    assert 1 in dynamic.in_labels[1]
    dynamic.insert_edge(1, 0)  # cycle 0 <-> 1 dominated by vertex 0
    assert 1 not in dynamic.in_labels[1]
    assert dynamic.query(1, 1)  # still true, covered via vertex 0
    _assert_exact(dynamic)


def test_delete_simple_edge():
    g = DiGraph(3, [(0, 1), (1, 2)])
    dynamic = DynamicReachabilityIndex(g, VertexOrder([0, 1, 2]))
    assert dynamic.query(0, 2)
    assert dynamic.delete_edge(1, 2)
    assert not dynamic.query(0, 2)
    assert not dynamic.query(1, 2)
    assert dynamic.query(0, 1)
    _assert_exact(dynamic)


def test_delete_absent_edge_is_noop():
    dynamic = DynamicReachabilityIndex(DiGraph(2, [(0, 1)]))
    assert not dynamic.delete_edge(1, 0)
    _assert_exact(dynamic)


def test_delete_breaking_domination_restores_labels():
    """Removing the higher-order bypass must re-validate entries that
    it had pruned."""
    # 0 is highest order; path 1 -> 2 plus bypass 1 -> 0 -> 2.
    g = DiGraph(3, [(1, 2), (1, 0), (0, 2)])
    order = VertexOrder([0, 1, 2])
    dynamic = DynamicReachabilityIndex(g, order)
    assert 1 not in dynamic.in_labels[2]  # dominated via vertex 0
    dynamic.delete_edge(0, 2)
    assert 1 in dynamic.in_labels[2]  # direct edge now undominated
    _assert_exact(dynamic)


def test_reinsert_after_delete_round_trips():
    g = random_digraph(20, 60, seed=2)
    dynamic = DynamicReachabilityIndex(g)
    edges = list(g.edges())[:10]
    for u, v in edges:
        dynamic.delete_edge(u, v)
    for u, v in edges:
        dynamic.insert_edge(u, v)
    assert dynamic.current_graph() == g
    _assert_exact(dynamic)


@pytest.mark.parametrize("family", ["dag", "cyclic", "scc-heavy", "power-law"])
def test_delete_then_reinsert_same_edge_matches_rebuild(family):
    """Deleting an edge and re-inserting the *same* edge must track a
    full rebuild at every intermediate state, not just round-trip back
    to the original index.

    Insertion and deletion take different code paths (resumed BFS vs.
    backward recomputation); the mid-point equality is what catches a
    deletion that leaves stale entries an insertion silently re-covers.
    """
    from repro.fuzz.cases import family_graph

    g = family_graph(family, 18, seed=9)
    dynamic = DynamicReachabilityIndex(g)
    for u, v in list(g.edges())[:6]:
        assert dynamic.delete_edge(u, v)
        _assert_exact(dynamic)  # rebuild equality with the edge gone
        assert dynamic.insert_edge(u, v)
        _assert_exact(dynamic)  # ... and after it returns
    assert dynamic.current_graph() == g
    assert dynamic.snapshot() == tol_index(g, dynamic.order)


def test_rebuild_threshold_path():
    """A tiny rebuild_fraction forces the full-rebuild branch."""
    g = random_digraph(25, 80, seed=3)
    dynamic = DynamicReachabilityIndex(g, rebuild_fraction=1e-6)
    u, v = next(iter(g.edges()))
    dynamic.delete_edge(u, v)
    _assert_exact(dynamic)


def test_invalid_constructor_arguments():
    g = DiGraph(3, [])
    with pytest.raises(ValueError):
        DynamicReachabilityIndex(g, VertexOrder([0, 1]))
    with pytest.raises(ValueError):
        DynamicReachabilityIndex(g, rebuild_fraction=0.0)


def test_edges_and_has_edge_views():
    g = DiGraph(3, [(0, 1), (1, 2)])
    dynamic = DynamicReachabilityIndex(g)
    assert dynamic.has_edge(0, 1)
    dynamic.delete_edge(0, 1)
    assert not dynamic.has_edge(0, 1)
    assert list(dynamic.edges()) == [(1, 2)]


# ----------------------------------------------------------------------
# Node additions and deletions
# ----------------------------------------------------------------------
def test_add_node_appends_dense_id_at_tail():
    g = DiGraph(3, [(0, 1)])
    dynamic = DynamicReachabilityIndex(g, VertexOrder([0, 1, 2]))
    v = dynamic.add_node()
    assert v == 3  # dense ids, never recycled
    assert dynamic.num_vertices == 4
    assert list(dynamic.order.by_rank())[-1] == v  # tail of the order
    assert dynamic.in_labels[v] == {v}
    assert dynamic.out_labels[v] == {v}
    _assert_exact(dynamic)
    # The fresh vertex participates in subsequent edge updates.
    dynamic.insert_edge(1, v)
    assert dynamic.query(0, v)
    _assert_exact(dynamic)


def test_delete_node_removes_incident_edges_in_one_pass():
    g = DiGraph(5, [(0, 2), (1, 2), (2, 3), (2, 4), (0, 1)])
    dynamic = DynamicReachabilityIndex(g)
    assert dynamic.delete_node(2)
    assert not dynamic.is_alive(2)
    assert sorted(dynamic.edges()) == [(0, 1)]
    assert not dynamic.query(0, 3)
    _assert_exact(dynamic)


def test_delete_node_tombstone_queries_ok_mutations_raise():
    g = DiGraph(4, [(0, 1), (1, 2), (2, 3)])
    dynamic = DynamicReachabilityIndex(g)
    assert dynamic.delete_node(1)
    with pytest.raises(ValueError):
        dynamic.delete_node(1)  # the tombstone cannot be deleted again
    # Queries against the tombstone are permitted: it is isolated.
    assert not dynamic.query(0, 1)
    assert not dynamic.query(1, 2)
    assert dynamic.query(1, 1)
    assert dynamic.alive_vertices() == [0, 2, 3]
    # Mutating it is not.
    with pytest.raises(ValueError):
        dynamic.insert_edge(0, 1)
    with pytest.raises(ValueError):
        dynamic.delete_edge(1, 2)
    with pytest.raises(ValueError):
        dynamic.promote(1)
    _assert_exact(dynamic)


def test_delete_node_fires_a_single_notification():
    g = DiGraph(4, [(0, 1), (1, 2), (1, 3), (2, 3)])
    dynamic = DynamicReachabilityIndex(g)
    events = []
    dynamic.subscribe(lambda op, u, v: events.append((op, u, v)))
    dynamic.delete_node(1)
    # One settled notification, not one per removed incident edge.
    assert events == [("delete_node", 1, 1)]


# ----------------------------------------------------------------------
# Order upgrades (TOL butterfly rewrite)
# ----------------------------------------------------------------------
def test_promote_snapshot_equals_tol_under_upgraded_order():
    """Acceptance criterion: after ``promote`` the snapshot must be
    byte-equal to ``tol_index(current_graph, upgraded_order)``."""
    g = random_digraph(30, 110, seed=7)
    dynamic = DynamicReachabilityIndex(g)
    for v in (29, 17, 23, 5):
        old_rank = dynamic.order.ranks[v]
        new_rank = dynamic.promote(v, max(0, old_rank - 7))
        if new_rank is None:
            continue
        assert dynamic.order.ranks[v] == new_rank
        assert dynamic.snapshot() == tol_index(
            dynamic.current_graph(), dynamic.order
        )


def test_promote_to_ideal_rank_by_default():
    # Vertex 3 starts with no edges (lowest degree key) and then becomes
    # the best-connected vertex; promote() should move it to rank 0.
    g = DiGraph(6, [(0, 1), (1, 2), (4, 5)])
    dynamic = DynamicReachabilityIndex(g)
    for u in (0, 1, 2, 4, 5):
        if u != 3:
            dynamic.insert_edge(3, u) if not dynamic.has_edge(3, u) else None
            if not dynamic.has_edge(u, 3):
                dynamic.insert_edge(u, 3)
    assert dynamic.drift(3) > 0
    new_rank = dynamic.promote(3)
    assert new_rank == dynamic._ideal_rank(3) == 0
    assert dynamic.drift(3) <= 0
    _assert_exact(dynamic)


def test_promote_hubward_only():
    g = random_digraph(12, 30, seed=4)
    dynamic = DynamicReachabilityIndex(g)
    top = list(dynamic.order.by_rank())[0]
    events = []
    dynamic.subscribe(lambda op, u, v: events.append(op))
    assert dynamic.promote(top, 5) is None  # demotion request refused
    assert dynamic.promote(top, 99) is None  # ditto, past the tail
    # A negative target is the "ideal rank" sentinel, not an error; the
    # top vertex is already at or above it, so still a silent no-op.
    assert dynamic.promote(top, -1) is None
    assert events == []
    _assert_exact(dynamic)


def test_drift_threshold_auto_promotes_on_edge_updates():
    g = DiGraph(8, [(0, 1), (1, 2), (2, 3), (4, 5), (5, 6)])
    dynamic = DynamicReachabilityIndex(g, drift_threshold=2)
    promotions = []

    def listener(op, u, v):
        if op == "promote":
            promotions.append((u, v))

    dynamic.subscribe(listener)
    # Fatten vertex 7 (initially edgeless, hence rank tail) until its
    # degree rank outruns its frozen rank by more than the threshold.
    for u in (0, 1, 2, 3, 4, 5):
        dynamic.insert_edge(u, 7)
        dynamic.insert_edge(7, (u + 1) % 7)
        _assert_exact(dynamic)
    assert any(v == 7 for v, _ in promotions)
    assert dynamic.drift(7) <= 2
    _assert_exact(dynamic)


@settings(max_examples=25, deadline=None)
@given(
    digraphs(max_vertices=10),
    st.lists(st.integers(0, 9), max_size=6),
)
def test_property_promote_sequences_stay_exact(g, vertices):
    dynamic = DynamicReachabilityIndex(g)
    for raw in vertices:
        v = raw % g.num_vertices
        dynamic.promote(v)
        assert dynamic.snapshot() == tol_index(
            dynamic.current_graph(), dynamic.order
        )


# ----------------------------------------------------------------------
# Listener ordering: notifications fire only on a consistent index
# ----------------------------------------------------------------------
class _ConsistencyListener:
    """Asserts, *at notification time*, that the index already equals a
    fresh TOL rebuild — i.e. listeners never observe a half-updated
    index on any code path (regression guard for the serving layer's
    cache-invalidation and replication hooks)."""

    def __init__(self, dynamic: DynamicReachabilityIndex):
        self.dynamic = dynamic
        self.events: list[tuple[str, int, int]] = []

    def __call__(self, op, u, v):
        self.events.append((op, u, v))
        assert op in ("insert", "delete", "add_node", "delete_node", "promote")
        expected = tol_index(self.dynamic.current_graph(), self.dynamic.order)
        assert self.dynamic.snapshot() == expected, (
            f"listener for {op!r} saw an inconsistent index"
        )


def test_listeners_see_consistent_index_on_every_path():
    g = random_digraph(20, 55, seed=6)
    dynamic = DynamicReachabilityIndex(g, drift_threshold=3)
    listener = _ConsistencyListener(dynamic)
    dynamic.subscribe(listener)
    dynamic.insert_edge(2, 17)
    dynamic.delete_edge(2, 17)  # per-vertex recompute path
    dynamic.add_node()
    dynamic.insert_edge(20, 0)
    dynamic.promote(19)
    dynamic.delete_node(3)
    assert [op for op, _, _ in listener.events][:2] == ["insert", "delete"]
    assert "delete_node" in [op for op, _, _ in listener.events]


def test_listener_consistent_on_deletion_rebuild_fallback():
    g = random_digraph(18, 50, seed=8)
    dynamic = DynamicReachabilityIndex(g, rebuild_fraction=1e-6)
    listener = _ConsistencyListener(dynamic)
    dynamic.subscribe(listener)
    u, v = next(iter(g.edges()))
    assert dynamic.delete_edge(u, v)  # forces the full-rebuild branch
    assert listener.events == [("delete", u, v)]


def test_unsubscribe_stops_notifications():
    dynamic = DynamicReachabilityIndex(DiGraph(3, []))
    events = []
    listener = lambda op, u, v: events.append(op)  # noqa: E731
    dynamic.subscribe(listener)
    dynamic.insert_edge(0, 1)
    dynamic.unsubscribe(listener)
    dynamic.insert_edge(1, 2)
    assert events == ["insert"]


# ----------------------------------------------------------------------
# Property tests: exactness under random update sequences
# ----------------------------------------------------------------------
@settings(max_examples=40, deadline=None)
@given(
    digraphs(max_vertices=12),
    st.lists(
        st.tuples(
            st.booleans(), st.integers(0, 11), st.integers(0, 11)
        ),
        max_size=12,
    ),
)
def test_property_exact_under_update_sequences(g, operations):
    dynamic = DynamicReachabilityIndex(g)
    for insert, u, v in operations:
        u %= g.num_vertices
        v %= g.num_vertices
        if u == v:
            continue
        if insert:
            dynamic.insert_edge(u, v)
        else:
            dynamic.delete_edge(u, v)
    _assert_exact(dynamic)


@settings(max_examples=25, deadline=None)
@given(
    digraphs(max_vertices=10),
    st.lists(
        st.tuples(st.booleans(), st.integers(0, 9), st.integers(0, 9)),
        max_size=8,
    ),
)
def test_property_queries_match_oracle_after_each_update(g, operations):
    dynamic = DynamicReachabilityIndex(g)
    for insert, u, v in operations:
        u %= g.num_vertices
        v %= g.num_vertices
        if u == v:
            continue
        if insert:
            dynamic.insert_edge(u, v)
        else:
            dynamic.delete_edge(u, v)
        oracle = TransitiveClosure(dynamic.current_graph())
        for s in range(g.num_vertices):
            for t in range(g.num_vertices):
                assert dynamic.query(s, t) == oracle.query(s, t), (s, t)


@settings(max_examples=20, deadline=None)
@given(digraphs(max_vertices=12))
def test_property_insert_all_edges_incrementally(g):
    """Build the graph edge-by-edge; the result must equal batch TOL."""
    empty = DiGraph(g.num_vertices, [])
    order = degree_order(g)  # fixed order taken from the final graph
    dynamic = DynamicReachabilityIndex(empty, order)
    for u, v in g.edges():
        dynamic.insert_edge(u, v)
    assert dynamic.snapshot() == tol_index(g, order)


@settings(max_examples=20, deadline=None)
@given(digraphs(max_vertices=12))
def test_property_delete_all_edges_incrementally(g):
    order = degree_order(g)
    dynamic = DynamicReachabilityIndex(g, order)
    for u, v in g.edges():
        dynamic.delete_edge(u, v)
    empty = DiGraph(g.num_vertices, [])
    assert dynamic.snapshot() == tol_index(empty, order)
