"""Tests for dynamic TOL-index maintenance.

The exactness contract: after any sequence of insertions and deletions,
``snapshot()`` equals ``tol_index(current_graph, original_order)`` —
the index TOL would build from scratch under the fixed order.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.transitive_closure import TransitiveClosure
from repro.core.dynamic import DynamicReachabilityIndex
from repro.core.tol import tol_index
from repro.graph.digraph import DiGraph
from repro.graph.generators import random_digraph
from repro.graph.order import VertexOrder, degree_order
from tests.conftest import digraphs


def _assert_exact(dynamic: DynamicReachabilityIndex) -> None:
    expected = tol_index(dynamic.current_graph(), dynamic.order)
    assert dynamic.snapshot() == expected


# ----------------------------------------------------------------------
# Basic operations
# ----------------------------------------------------------------------
def test_initial_index_matches_tol():
    g = random_digraph(30, 90, seed=1)
    dynamic = DynamicReachabilityIndex(g)
    assert dynamic.snapshot() == tol_index(g, degree_order(g))
    assert dynamic.num_edges == 90


def test_insert_simple_edge():
    g = DiGraph(3, [(0, 1)])
    dynamic = DynamicReachabilityIndex(g, VertexOrder([0, 1, 2]))
    assert not dynamic.query(1, 2)
    assert dynamic.insert_edge(1, 2)
    assert dynamic.query(1, 2)
    assert dynamic.query(0, 2)
    _assert_exact(dynamic)


def test_insert_existing_edge_is_noop():
    g = DiGraph(2, [(0, 1)])
    dynamic = DynamicReachabilityIndex(g)
    assert not dynamic.insert_edge(0, 1)
    _assert_exact(dynamic)


def test_insert_rejects_self_loop_and_bad_vertex():
    dynamic = DynamicReachabilityIndex(DiGraph(2, []))
    with pytest.raises(ValueError):
        dynamic.insert_edge(0, 0)
    with pytest.raises(ValueError):
        dynamic.insert_edge(0, 5)


def test_insert_creating_cycle_invalidates_self_labels():
    """Closing a cycle under a higher-order vertex must strip the
    lower vertex's self-labels (the paper's cyclic-graph semantics)."""
    g = DiGraph(2, [(0, 1)])
    order = VertexOrder([0, 1])  # vertex 0 is higher order
    dynamic = DynamicReachabilityIndex(g, order)
    assert 1 in dynamic.in_labels[1]
    dynamic.insert_edge(1, 0)  # cycle 0 <-> 1 dominated by vertex 0
    assert 1 not in dynamic.in_labels[1]
    assert dynamic.query(1, 1)  # still true, covered via vertex 0
    _assert_exact(dynamic)


def test_delete_simple_edge():
    g = DiGraph(3, [(0, 1), (1, 2)])
    dynamic = DynamicReachabilityIndex(g, VertexOrder([0, 1, 2]))
    assert dynamic.query(0, 2)
    assert dynamic.delete_edge(1, 2)
    assert not dynamic.query(0, 2)
    assert not dynamic.query(1, 2)
    assert dynamic.query(0, 1)
    _assert_exact(dynamic)


def test_delete_absent_edge_is_noop():
    dynamic = DynamicReachabilityIndex(DiGraph(2, [(0, 1)]))
    assert not dynamic.delete_edge(1, 0)
    _assert_exact(dynamic)


def test_delete_breaking_domination_restores_labels():
    """Removing the higher-order bypass must re-validate entries that
    it had pruned."""
    # 0 is highest order; path 1 -> 2 plus bypass 1 -> 0 -> 2.
    g = DiGraph(3, [(1, 2), (1, 0), (0, 2)])
    order = VertexOrder([0, 1, 2])
    dynamic = DynamicReachabilityIndex(g, order)
    assert 1 not in dynamic.in_labels[2]  # dominated via vertex 0
    dynamic.delete_edge(0, 2)
    assert 1 in dynamic.in_labels[2]  # direct edge now undominated
    _assert_exact(dynamic)


def test_reinsert_after_delete_round_trips():
    g = random_digraph(20, 60, seed=2)
    dynamic = DynamicReachabilityIndex(g)
    edges = list(g.edges())[:10]
    for u, v in edges:
        dynamic.delete_edge(u, v)
    for u, v in edges:
        dynamic.insert_edge(u, v)
    assert dynamic.current_graph() == g
    _assert_exact(dynamic)


@pytest.mark.parametrize("family", ["dag", "cyclic", "scc-heavy", "power-law"])
def test_delete_then_reinsert_same_edge_matches_rebuild(family):
    """Deleting an edge and re-inserting the *same* edge must track a
    full rebuild at every intermediate state, not just round-trip back
    to the original index.

    Insertion and deletion take different code paths (resumed BFS vs.
    backward recomputation); the mid-point equality is what catches a
    deletion that leaves stale entries an insertion silently re-covers.
    """
    from repro.fuzz.cases import family_graph

    g = family_graph(family, 18, seed=9)
    dynamic = DynamicReachabilityIndex(g)
    for u, v in list(g.edges())[:6]:
        assert dynamic.delete_edge(u, v)
        _assert_exact(dynamic)  # rebuild equality with the edge gone
        assert dynamic.insert_edge(u, v)
        _assert_exact(dynamic)  # ... and after it returns
    assert dynamic.current_graph() == g
    assert dynamic.snapshot() == tol_index(g, dynamic.order)


def test_rebuild_threshold_path():
    """A tiny rebuild_fraction forces the full-rebuild branch."""
    g = random_digraph(25, 80, seed=3)
    dynamic = DynamicReachabilityIndex(g, rebuild_fraction=1e-6)
    u, v = next(iter(g.edges()))
    dynamic.delete_edge(u, v)
    _assert_exact(dynamic)


def test_invalid_constructor_arguments():
    g = DiGraph(3, [])
    with pytest.raises(ValueError):
        DynamicReachabilityIndex(g, VertexOrder([0, 1]))
    with pytest.raises(ValueError):
        DynamicReachabilityIndex(g, rebuild_fraction=0.0)


def test_edges_and_has_edge_views():
    g = DiGraph(3, [(0, 1), (1, 2)])
    dynamic = DynamicReachabilityIndex(g)
    assert dynamic.has_edge(0, 1)
    dynamic.delete_edge(0, 1)
    assert not dynamic.has_edge(0, 1)
    assert list(dynamic.edges()) == [(1, 2)]


# ----------------------------------------------------------------------
# Property tests: exactness under random update sequences
# ----------------------------------------------------------------------
@settings(max_examples=40, deadline=None)
@given(
    digraphs(max_vertices=12),
    st.lists(
        st.tuples(
            st.booleans(), st.integers(0, 11), st.integers(0, 11)
        ),
        max_size=12,
    ),
)
def test_property_exact_under_update_sequences(g, operations):
    dynamic = DynamicReachabilityIndex(g)
    for insert, u, v in operations:
        u %= g.num_vertices
        v %= g.num_vertices
        if u == v:
            continue
        if insert:
            dynamic.insert_edge(u, v)
        else:
            dynamic.delete_edge(u, v)
    _assert_exact(dynamic)


@settings(max_examples=25, deadline=None)
@given(
    digraphs(max_vertices=10),
    st.lists(
        st.tuples(st.booleans(), st.integers(0, 9), st.integers(0, 9)),
        max_size=8,
    ),
)
def test_property_queries_match_oracle_after_each_update(g, operations):
    dynamic = DynamicReachabilityIndex(g)
    for insert, u, v in operations:
        u %= g.num_vertices
        v %= g.num_vertices
        if u == v:
            continue
        if insert:
            dynamic.insert_edge(u, v)
        else:
            dynamic.delete_edge(u, v)
        oracle = TransitiveClosure(dynamic.current_graph())
        for s in range(g.num_vertices):
            for t in range(g.num_vertices):
                assert dynamic.query(s, t) == oracle.query(s, t), (s, t)


@settings(max_examples=20, deadline=None)
@given(digraphs(max_vertices=12))
def test_property_insert_all_edges_incrementally(g):
    """Build the graph edge-by-edge; the result must equal batch TOL."""
    empty = DiGraph(g.num_vertices, [])
    order = degree_order(g)  # fixed order taken from the final graph
    dynamic = DynamicReachabilityIndex(empty, order)
    for u, v in g.edges():
        dynamic.insert_edge(u, v)
    assert dynamic.snapshot() == tol_index(g, order)


@settings(max_examples=20, deadline=None)
@given(digraphs(max_vertices=12))
def test_property_delete_all_edges_incrementally(g):
    order = degree_order(g)
    dynamic = DynamicReachabilityIndex(g, order)
    for u, v in g.edges():
        dynamic.delete_edge(u, v)
    empty = DiGraph(g.num_vertices, [])
    assert dynamic.snapshot() == tol_index(empty, order)
