"""Tests for SCC-condensed indexing."""

from hypothesis import given, settings

from repro.baselines.transitive_closure import TransitiveClosure
from repro.core.condensed import build_condensed_index
from repro.core.build import build_index
from repro.graph.digraph import DiGraph
from repro.graph.generators import social_graph
from repro.pregel.cost_model import CostModel
from tests.conftest import digraphs

_NO_LIMIT = CostModel(time_limit_seconds=None)


@settings(max_examples=40, deadline=None)
@given(digraphs())
def test_property_answers_match_direct_index(g):
    condensed, _result = build_condensed_index(g, cost_model=_NO_LIMIT)
    direct = build_index(g, cost_model=_NO_LIMIT).index
    for s in range(g.num_vertices):
        for t in range(g.num_vertices):
            assert condensed.query(s, t) == direct.query(s, t), (s, t)


@settings(max_examples=30, deadline=None)
@given(digraphs())
def test_property_answers_match_oracle(g):
    oracle = TransitiveClosure(g)
    condensed, _result = build_condensed_index(g, method="tol", cost_model=_NO_LIMIT)
    for s in range(g.num_vertices):
        for t in range(g.num_vertices):
            assert condensed.query(s, t) == oracle.query(s, t)


def test_cyclic_graph_shrinks_label_storage():
    g = social_graph(600, seed=3, reciprocity=0.5)  # big SCC core
    condensed, _result = build_condensed_index(g, cost_model=_NO_LIMIT)
    direct = build_index(g, cost_model=_NO_LIMIT).index
    assert condensed.num_components < g.num_vertices
    assert condensed.dag_index.num_entries < direct.num_entries


def test_component_mapping():
    g = DiGraph(4, [(0, 1), (1, 0), (2, 3)])
    condensed, _result = build_condensed_index(g, cost_model=_NO_LIMIT)
    assert condensed.component_of(0) == condensed.component_of(1)
    assert condensed.component_of(2) != condensed.component_of(3)
    assert condensed.num_vertices == 4
    assert condensed.num_components == 3
    assert condensed.size_bytes() > 0


def test_method_forwarding():
    g = social_graph(200, seed=4)
    for method in ("tol", "drl", "drl-b"):
        condensed, result = build_condensed_index(
            g, method=method, cost_model=_NO_LIMIT
        )
        assert condensed.query(0, 50) == build_index(
            g, cost_model=_NO_LIMIT
        ).index.query(0, 50)
        assert result.stats.compute_units > 0
