"""Tests for the experiment harness and result tables."""

import pytest

from repro.bench.harness import (
    run_ablation_check_pruning,
    run_fig5_comm_comp,
    run_fig8_batch_size,
    run_fig9_factor_k,
    run_table6,
)
from repro.bench.results import Cell, ExperimentTable
from repro.pregel.cost_model import paper_scale_model


# ----------------------------------------------------------------------
# Result containers
# ----------------------------------------------------------------------
def test_cell_markers():
    assert Cell.unavailable().format() == "-"
    assert Cell.timeout().format() == "INF"
    assert not Cell.unavailable().ok
    assert Cell(1.5).ok


def test_cell_formatting():
    assert Cell(1.23456).format(precision=2) == "1.23"
    assert Cell(0.00012).format(scientific=True) == "1.20e-04"
    assert Cell().format() == ""


def test_table_set_get_render():
    table = ExperimentTable("T", ["a", "b"])
    table.set("row1", "a", 1.0)
    table.set("row1", "b", Cell.timeout())
    table.set("row2", "a", Cell.unavailable())
    assert table.get("row1", "a").value == 1.0
    assert table.get("row2", "b").marker is None  # missing -> empty cell
    text = table.render()
    assert "T" in text and "row1" in text and "INF" in text and "-" in text


def test_table_rejects_unknown_column():
    table = ExperimentTable("T", ["a"])
    with pytest.raises(KeyError):
        table.set("r", "nope", 1.0)


def test_table_to_markdown():
    table = ExperimentTable("T", ["a", "b"])
    table.set("r1", "a", 1.5)
    table.set("r1", "b", Cell.unavailable())
    md = table.to_markdown()
    lines = md.splitlines()
    assert lines[0] == "| Name | a | b |"
    assert lines[1].startswith("|---")
    assert "| r1 | 1.5000 | - |" in md


def test_table_to_csv():
    table = ExperimentTable("T", ["a"])
    table.set("r1", "a", 0.25)
    table.set("r2", "a", Cell.timeout())
    csv_text = table.to_csv()
    assert "name,a" in csv_text
    assert "r1,0.25" in csv_text
    assert "r2,INF" in csv_text


def test_table_column_values_skip_markers():
    table = ExperimentTable("T", ["a"])
    table.set("r1", "a", 2.0)
    table.set("r2", "a", Cell.timeout())
    table.set("r3", "a", 3.0)
    assert table.column_values("a") == [2.0, 3.0]


# ----------------------------------------------------------------------
# Harness smoke runs (single small dataset to keep tests fast)
# ----------------------------------------------------------------------
def test_table6_single_dataset_shape():
    time_t, size_t, query_t = run_table6(dataset_names=["TW"], num_queries=50)
    assert time_t.rows == ["TW"]
    for table in (time_t, size_t, query_t):
        assert table.columns == ["BFL^C", "BFL^D", "TOL", "DRL_b", "DRL_b^M"]
        assert all(table.get("TW", c).ok for c in table.columns)
    # Same index as TOL: identical size and query time columns.
    assert size_t.get("TW", "TOL").value == size_t.get("TW", "DRL_b").value
    assert query_t.get("TW", "TOL").value == query_t.get("TW", "DRL_b").value


def test_table6_respects_paper_unavailability():
    time_t, _size_t, _query_t = run_table6(
        dataset_names=["SINA"], num_queries=20
    )
    assert time_t.get("SINA", "TOL").marker == "-"
    assert time_t.get("SINA", "DRL_b^M").marker == "-"
    assert time_t.get("SINA", "BFL^C").ok
    assert time_t.get("SINA", "DRL_b").ok


def test_fig5_single_dataset():
    table = run_fig5_comm_comp(dataset_names=["GO"])
    assert table.rows == ["GO"]
    assert table.get("GO", "DRL comp").ok
    assert table.get("GO", "DRL_b comm").ok


def test_fig8_and_fig9_small_sweeps():
    fig8 = run_fig8_batch_size(dataset_names=["GO"], b_values=(1, 4))
    assert fig8.columns == ["b=1", "b=4"]
    assert all(fig8.get("GO", c).ok for c in fig8.columns)
    fig9 = run_fig9_factor_k(dataset_names=["GO"], k_values=(2, 4))
    assert all(fig9.get("GO", c).ok for c in fig9.columns)


def test_fig9_k1_much_slower():
    table = run_fig9_factor_k(dataset_names=["GO"], k_values=(1, 2))
    k1 = table.get("GO", "k=1")
    k2 = table.get("GO", "k=2")
    assert k2.ok
    assert (not k1.ok) or k1.value > 2 * k2.value


def test_ablation_check_pruning_helps_on_social():
    table = run_ablation_check_pruning(dataset_names=["TW"])
    with_check = table.get("TW", "with Check")
    without = table.get("TW", "without Check")
    assert with_check.ok
    assert (not without.ok) or without.value > with_check.value


def test_timeout_markers_appear_under_tight_cutoff():
    model = paper_scale_model(time_limit_seconds=1e-9)
    table = run_fig5_comm_comp(dataset_names=["GO"], cost_model=model)
    assert table.get("GO", "DRL comp").marker == "INF"


def test_atomic_write_text(tmp_path):
    from repro.bench.results import atomic_write_text

    path = tmp_path / "out.txt"
    atomic_write_text(path, "first\n")
    assert path.read_text() == "first\n"
    atomic_write_text(path, "second\n")  # overwrite is atomic too
    assert path.read_text() == "second\n"
    # No temp droppings left behind.
    assert [p.name for p in tmp_path.iterdir()] == ["out.txt"]


def test_capture_tables_collects_created_tables():
    from repro.bench.results import ExperimentTable, capture_tables

    with capture_tables() as captured:
        table = ExperimentTable("T", ["c"])
        table.set("r", "c", 1.0)
    assert captured == [table]
    # Outside the block, new tables are no longer captured.
    ExperimentTable("other", ["c"])
    assert len(captured) == 1


def test_run_fault_recovery_table():
    from repro.bench import run_fault_recovery

    table = run_fault_recovery(dataset_names=("GO",), num_nodes=8)
    assert table.rows == ["GO"]
    assert table.get("GO", "identical").value == 1.0
    assert table.get("GO", "recovery s").value > 0.0
    assert (
        table.get("GO", "faulty s").value > table.get("GO", "clean s").value
    )
