"""Tests for the online-search baselines and the transitive closure."""

from hypothesis import given, settings

from repro.baselines.online import (
    DistributedOnlineSearcher,
    OnlineSearcher,
    ground_truth_matrix,
)
from repro.baselines.transitive_closure import TransitiveClosure
from repro.graph.digraph import DiGraph
from repro.graph.generators import social_graph
from tests.conftest import digraphs


def test_online_trivial_cases():
    g = DiGraph(3, [(0, 1)])
    searcher = OnlineSearcher(g)
    assert searcher.query(0, 0)
    assert searcher.query(0, 1)
    assert not searcher.query(1, 0)
    assert not searcher.query(0, 2)


def test_online_query_with_cost():
    g = DiGraph(4, [(0, 1), (1, 2), (2, 3)])
    searcher = OnlineSearcher(g)
    answer, seconds = searcher.query_with_cost(0, 3)
    assert answer and seconds > 0
    answer_self, seconds_self = searcher.query_with_cost(2, 2)
    assert answer_self and seconds_self < seconds


def test_online_reuses_visited_array():
    g = social_graph(200, seed=1)
    searcher = OnlineSearcher(g)
    first = [searcher.query(0, t) for t in range(200)]
    second = [searcher.query(0, t) for t in range(200)]
    assert first == second


@settings(max_examples=40, deadline=None)
@given(digraphs())
def test_property_distributed_online_matches_centralized(g):
    central = OnlineSearcher(g)
    distributed = DistributedOnlineSearcher(g, num_nodes=4)
    for s in range(min(g.num_vertices, 6)):
        for t in range(g.num_vertices):
            assert distributed.query(s, t) == central.query(s, t)


def test_distributed_online_charges_rounds():
    g = DiGraph(4, [(0, 1), (1, 2), (2, 3)])
    searcher = DistributedOnlineSearcher(g, num_nodes=2)
    _answer, near = searcher.query_with_cost(0, 1)
    _answer, far = searcher.query_with_cost(0, 3)
    assert far > near  # more BFS rounds -> more barriers/messages


def test_ground_truth_matrix():
    g = DiGraph(3, [(0, 1), (1, 2)])
    matrix = ground_truth_matrix(g)
    assert matrix[0] == {0, 1, 2}
    assert matrix[1] == {1, 2}
    assert matrix[2] == {2}


# ----------------------------------------------------------------------
# Transitive closure
# ----------------------------------------------------------------------
@settings(max_examples=50, deadline=None)
@given(digraphs())
def test_property_tc_matches_bfs(g):
    oracle = TransitiveClosure(g)
    searcher = OnlineSearcher(g)
    for s in range(min(g.num_vertices, 8)):
        for t in range(g.num_vertices):
            assert oracle.query(s, t) == searcher.query(s, t)


def test_tc_descendants():
    g = DiGraph(4, [(0, 1), (1, 0), (1, 2)])
    oracle = TransitiveClosure(g)
    assert oracle.descendants(0) == {0, 1, 2}
    assert oracle.descendants(3) == {3}


def test_tc_reachable_pairs():
    g = DiGraph(3, [(0, 1), (1, 2)])
    # pairs: (0,0),(0,1),(0,2),(1,1),(1,2),(2,2)
    assert TransitiveClosure(g).reachable_pairs() == 6


def test_tc_reachable_pairs_with_scc():
    g = DiGraph(2, [(0, 1), (1, 0)])
    assert TransitiveClosure(g).reachable_pairs() == 4


@settings(max_examples=30, deadline=None)
@given(digraphs())
def test_property_tc_reachable_pairs_matches_enumeration(g):
    oracle = TransitiveClosure(g)
    expected = sum(
        oracle.query(s, t)
        for s in range(g.num_vertices)
        for t in range(g.num_vertices)
    )
    assert oracle.reachable_pairs() == expected
