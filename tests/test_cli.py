"""Tests for the command-line interface."""

import pytest

from repro.cli import main
from repro.core.labels import ReachabilityIndex
from repro.graph.io import read_edge_list


@pytest.fixture
def graph_file(tmp_path):
    path = tmp_path / "graph.txt"
    assert main(["generate", str(path), "--kind", "social",
                 "--vertices", "200", "--seed", "1"]) == 0
    return path


@pytest.fixture
def index_file(tmp_path, graph_file):
    path = tmp_path / "graph.idx"
    assert main(["build", str(graph_file), "-o", str(path)]) == 0
    return path


def test_datasets_listing(capsys):
    assert main(["datasets"]) == 0
    out = capsys.readouterr().out
    assert "WEBW" in out and "WEBS" in out
    assert out.count("yes") == 6  # the six medium graphs


def test_generate_writes_edge_list(graph_file):
    graph = read_edge_list(graph_file)
    assert graph.num_vertices == 200
    assert graph.num_edges > 100


def test_generate_all_kinds(tmp_path):
    for kind in ("web", "citation", "knowledge", "random", "dag"):
        path = tmp_path / f"{kind}.txt"
        assert main(["generate", str(path), "--kind", kind,
                     "--vertices", "50", "--seed", "2"]) == 0
        assert read_edge_list(path).num_vertices <= 50 or True


def test_build_and_info(graph_file, index_file, capsys):
    index = ReachabilityIndex.load(index_file)
    assert index.num_vertices == 200
    assert main(["info", str(index_file)]) == 0
    out = capsys.readouterr().out
    assert "vertices:      200" in out
    assert "label entries" in out


def test_build_methods(tmp_path, graph_file):
    indexes = []
    for method in ("tol", "drl", "drl-b"):
        out = tmp_path / f"{method}.idx"
        assert main(["build", str(graph_file), "-o", str(out),
                     "--method", method, "--nodes", "4"]) == 0
        indexes.append(ReachabilityIndex.load(out))
    assert indexes[0] == indexes[1] == indexes[2]


def test_build_missing_file(tmp_path, capsys):
    missing = tmp_path / "nope.txt"
    assert main(["build", str(missing), "-o", str(tmp_path / "x.idx")]) == 2
    assert "no such file" in capsys.readouterr().err


def test_query_single_pair(index_file, capsys):
    assert main(["query", str(index_file), "0", "0"]) == 0
    assert "0 0 reachable" in capsys.readouterr().out


def test_query_pairs_file(tmp_path, index_file, capsys):
    pairs = tmp_path / "pairs.txt"
    pairs.write_text("0 0\n0 199\n500 0\n")
    assert main(["query", str(index_file), "--pairs", str(pairs)]) == 0
    out = capsys.readouterr().out
    assert "0 0 reachable" in out
    assert "500 0 out-of-range" in out


def test_query_pairs_skips_malformed_lines(tmp_path, index_file, capsys):
    pairs = tmp_path / "pairs.txt"
    pairs.write_text("0 0\nnot numbers\n7\n1 2\n3 x\n\n")
    assert main(["query", str(index_file), "--pairs", str(pairs)]) == 1
    captured = capsys.readouterr()
    assert "0 0 reachable" in captured.out  # valid lines still answered
    assert "1 2" in captured.out
    assert captured.err.count("skipped") == 4  # 3 line warnings + summary
    assert "expected two columns" in captured.err
    assert "non-integer pair" in captured.err
    assert "skipped 3 malformed line(s)" in captured.err


def test_query_requires_arguments(index_file, capsys):
    assert main(["query", str(index_file)]) == 2
    assert "SOURCE TARGET" in capsys.readouterr().err


def test_query_missing_index(tmp_path, capsys):
    assert main(["query", str(tmp_path / "missing.idx"), "0", "1"]) == 2


def test_info_missing_index(tmp_path):
    assert main(["info", str(tmp_path / "missing.idx")]) == 2


def test_analyze(graph_file, capsys):
    assert main(["analyze", str(graph_file)]) == 0
    out = capsys.readouterr().out
    assert "vertices: 200" in out
    assert "bow-tie" in out
    assert "SCCs" in out


def test_analyze_missing_file(tmp_path):
    assert main(["analyze", str(tmp_path / "none.txt")]) == 2


def test_validate_good_index(graph_file, index_file, capsys):
    assert main(["validate", str(graph_file), str(index_file),
                 "--sample", "500"]) == 0
    out = capsys.readouterr().out
    assert "cover:     OK (500 checked)" in out
    assert "soundness:" in out


def test_validate_detects_wrong_index(tmp_path, graph_file, capsys):
    # An index built for a DIFFERENT graph fails validation.
    other = tmp_path / "other.txt"
    main(["generate", str(other), "--kind", "social",
          "--vertices", "200", "--seed", "99"])
    wrong_index = tmp_path / "wrong.idx"
    main(["build", str(other), "-o", str(wrong_index)])
    code = main(["validate", str(graph_file), str(wrong_index)])
    assert code == 1
    assert "FAILED" in capsys.readouterr().out


def test_validate_missing_files(tmp_path, index_file):
    assert main(["validate", str(tmp_path / "no.txt"), str(index_file)]) == 2


def test_bench_fig8_single_dataset(capsys):
    assert main(["bench", "fig8", "--datasets", "GO"]) == 0
    out = capsys.readouterr().out
    assert "Fig. 8" in out and "GO" in out


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        main(["frobnicate"])


# ----------------------------------------------------------------------
# Telemetry flags and the trace subcommand
# ----------------------------------------------------------------------
def test_build_trace_out_then_trace_summary(tmp_path, graph_file, capsys):
    import json

    trace_file = tmp_path / "build.jsonl"
    assert main(["build", str(graph_file), "-o", str(tmp_path / "g.idx"),
                 "--nodes", "4", "--trace-out", str(trace_file)]) == 0
    captured = capsys.readouterr()
    assert f"trace written to {trace_file}" in captured.err
    records = [json.loads(line)
               for line in trace_file.read_text().splitlines()]
    kinds = {r["kind"] for r in records}
    assert kinds == {"span", "event", "metric"}
    names = {r["name"] for r in records if r["kind"] == "span"}
    assert "cli.build" in names and "pregel.run" in names
    assert "drl_b.batch" in names

    assert main(["trace", str(trace_file)]) == 0
    out = capsys.readouterr().out
    assert "Top spans by simulated time" in out
    assert "Super-steps of the longest run" in out
    assert "pregel.supersteps" in out


def test_query_verbose_logs_telemetry(index_file, capsys):
    assert main(["query", str(index_file), "0", "0", "--verbose"]) == 0
    captured = capsys.readouterr()
    assert "0 0 reachable" in captured.out
    assert "span cli.query" in captured.err
    assert "metric query.count=1" in captured.err


def test_bench_fig5_trace_out_reproduces_table(tmp_path, capsys):
    trace_file = tmp_path / "fig5.jsonl"
    assert main(["bench", "fig5", "--datasets", "GO",
                 "--trace-out", str(trace_file)]) == 0
    bench_out = capsys.readouterr().out
    assert main(["trace", str(trace_file)]) == 0
    trace_out = capsys.readouterr().out
    assert "Experiment fig5" in trace_out
    # The cell values the harness printed reappear from the spans alone.
    bench_row = next(l for l in bench_out.splitlines() if l.startswith("GO"))
    trace_row = next(
        l for l in trace_out.splitlines()
        if l.startswith("GO") and "comp" not in l
    )
    for value in bench_row.split("|")[1:]:
        assert value.strip() in trace_row


def test_trace_out_unwritable_path(tmp_path, graph_file, capsys):
    bad = tmp_path / "no-such-dir" / "t.jsonl"
    assert main(["build", str(graph_file), "-o", str(tmp_path / "g.idx"),
                 "--trace-out", str(bad)]) == 2
    assert "cannot write trace" in capsys.readouterr().err


def test_trace_missing_file(tmp_path, capsys):
    assert main(["trace", str(tmp_path / "none.jsonl")]) == 2
    assert "no such file" in capsys.readouterr().err


def test_trace_rejects_non_jsonl(tmp_path, capsys):
    bad = tmp_path / "bad.jsonl"
    bad.write_text("this is not json\n")
    assert main(["trace", str(bad)]) == 2
    assert "not JSON" in capsys.readouterr().err


def test_trace_tolerates_truncated_export(tmp_path, graph_file, capsys):
    """A trace cut off mid-write still summarizes; exit 1 + warning."""
    trace_file = tmp_path / "build.jsonl"
    assert main(["build", str(graph_file), "-o", str(tmp_path / "g.idx"),
                 "--nodes", "4", "--trace-out", str(trace_file)]) == 0
    capsys.readouterr()
    data = trace_file.read_bytes()
    truncated = tmp_path / "truncated.jsonl"
    truncated.write_bytes(data[: len(data) - 30])
    assert main(["trace", str(truncated)]) == 1
    captured = capsys.readouterr()
    assert "Top spans by simulated time" in captured.out
    assert "skipped 1 malformed line(s)" in captured.err


# ----------------------------------------------------------------------
# The profile subcommand
# ----------------------------------------------------------------------
@pytest.fixture
def straggler_trace(tmp_path, graph_file):
    """A DRL_b build trace with node 2 slowed 4x."""
    trace_file = tmp_path / "straggler.jsonl"
    assert main(["build", str(graph_file), "-o", str(tmp_path / "s.idx"),
                 "--method", "drl-b", "--nodes", "4",
                 "--faults", "straggler=2x4.0",
                 "--trace-out", str(trace_file)]) == 0
    return trace_file


def test_profile_names_straggler_and_wait_share(straggler_trace, capsys):
    """The issue's acceptance check: node 2 is the dominant straggler
    and the healthy nodes report non-zero barrier-wait share."""
    assert main(["profile", str(straggler_trace)]) == 0
    out = capsys.readouterr().out
    assert "Skew report" in out
    assert "stragglers: node 2 (4.0x)" in out
    rows = {
        int(line.split("|")[0]): line
        for line in out.splitlines()
        if line.strip().startswith(("0 ", "1 ", "2 ", "3 "))
        and line.count("|") >= 7
    }
    for node in (0, 1, 3):
        wait_share = float(rows[node].split("|")[6].strip().rstrip("%"))
        assert wait_share > 0
    assert "Critical path" in out
    assert "Top spans by simulated time" in out


def test_profile_clean_run_is_near_balanced(tmp_path, graph_file, capsys):
    trace_file = tmp_path / "clean.jsonl"
    assert main(["build", str(graph_file), "-o", str(tmp_path / "c.idx"),
                 "--method", "drl-b", "--nodes", "4",
                 "--trace-out", str(trace_file)]) == 0
    capsys.readouterr()
    assert main(["profile", str(trace_file)]) == 0
    out = capsys.readouterr().out
    assert "near-balanced" in out
    assert "stragglers:" not in out


def test_profile_exports_chrome_trace_and_flamegraph(
    straggler_trace, tmp_path, capsys
):
    import json

    chrome = tmp_path / "chrome.json"
    folded = tmp_path / "stacks.folded"
    assert main(["profile", str(straggler_trace),
                 "--chrome-trace", str(chrome),
                 "--flamegraph", str(folded)]) == 0
    capsys.readouterr()
    doc = json.loads(chrome.read_text())
    process_names = {
        e["args"]["name"]
        for e in doc["traceEvents"]
        if e["ph"] == "M" and e["name"] == "process_name"
    }
    for node in range(4):
        assert f"node {node} (simulated)" in process_names
    stacks = folded.read_text().splitlines()
    assert stacks
    for line in stacks:
        path, value = line.rsplit(" ", 1)
        assert ";" in path and int(value) > 0


def test_profile_missing_file(tmp_path, capsys):
    assert main(["profile", str(tmp_path / "none.jsonl")]) == 2
    assert "no such file" in capsys.readouterr().err


def test_profile_trace_without_node_events(tmp_path, capsys):
    trace = tmp_path / "spanonly.jsonl"
    trace.write_text(
        '{"kind":"span","name":"a","id":1,"parent":null,"start":0.0,'
        '"wall_seconds":0.1,"simulated_seconds":0.5,"status":"ok","attrs":{}}\n'
    )
    assert main(["profile", str(trace)]) == 0
    out = capsys.readouterr().out
    assert "no pregel.node events" in out
    assert "Top spans by simulated time" in out


# ----------------------------------------------------------------------
# The bench baseline gate
# ----------------------------------------------------------------------
def test_bench_save_then_check_baseline_roundtrip(tmp_path, capsys):
    import json

    baseline = tmp_path / "fig8.json"
    assert main(["bench", "fig8", "--datasets", "GO",
                 "--save-baseline", str(baseline)]) == 0
    assert "baseline saved" in capsys.readouterr().err
    doc = json.loads(baseline.read_text())
    assert doc["experiment"] == "fig8" and doc["metrics"]
    # Unchanged tree: the deterministic simulator reproduces exactly.
    assert main(["bench", "fig8", "--datasets", "GO",
                 "--check-baseline", str(baseline)]) == 0
    assert "0 failure(s)" in capsys.readouterr().out


def test_bench_check_baseline_fails_on_perturbation(tmp_path, capsys):
    import json

    baseline = tmp_path / "fig8.json"
    assert main(["bench", "fig8", "--datasets", "GO",
                 "--save-baseline", str(baseline)]) == 0
    capsys.readouterr()
    doc = json.loads(baseline.read_text())
    key = sorted(k for k, v in doc["metrics"].items()
                 if isinstance(v, float))[0]
    doc["metrics"][key] *= 2.0
    baseline.write_text(json.dumps(doc))
    assert main(["bench", "fig8", "--datasets", "GO",
                 "--check-baseline", str(baseline)]) == 1
    out = capsys.readouterr().out
    assert f"FAIL {key}" in out
    assert "improved" in out  # halved relative to the doubled baseline


def test_bench_check_baseline_threshold_flag(tmp_path, capsys):
    import json

    baseline = tmp_path / "fig8.json"
    assert main(["bench", "fig8", "--datasets", "GO",
                 "--save-baseline", str(baseline)]) == 0
    doc = json.loads(baseline.read_text())
    key = sorted(k for k, v in doc["metrics"].items()
                 if isinstance(v, float))[0]
    doc["metrics"][key] *= 1.05  # 5% off: fails at 1%, passes at 10%
    baseline.write_text(json.dumps(doc))
    assert main(["bench", "fig8", "--datasets", "GO",
                 "--check-baseline", str(baseline),
                 "--baseline-threshold", "0.01"]) == 1
    capsys.readouterr()
    assert main(["bench", "fig8", "--datasets", "GO",
                 "--check-baseline", str(baseline),
                 "--baseline-threshold", "0.10"]) == 0


def test_bench_check_missing_baseline_exits_2(tmp_path, capsys):
    assert main(["bench", "fig8", "--datasets", "GO",
                 "--check-baseline", str(tmp_path / "none.json")]) == 2
    assert "--save-baseline" in capsys.readouterr().err


# ----------------------------------------------------------------------
# Fault injection flags and ReproError exit codes
# ----------------------------------------------------------------------
def test_build_with_faults_identical_index(tmp_path, graph_file):
    clean = tmp_path / "clean.idx"
    faulty = tmp_path / "faulty.idx"
    assert main(["build", str(graph_file), "-o", str(clean),
                 "--method", "drl-b", "--nodes", "8"]) == 0
    assert main(["build", str(graph_file), "-o", str(faulty),
                 "--method", "drl-b", "--nodes", "8",
                 "--faults", "crash=1@3,straggler=2x2.0,loss=0.01,seed=42",
                 "--checkpoint-interval", "2"]) == 0
    # The save format is deterministic, so identical indexes mean
    # byte-identical files.
    assert clean.read_bytes() == faulty.read_bytes()


def test_build_reports_fault_summary(tmp_path, graph_file, capsys):
    out = tmp_path / "f.idx"
    assert main(["build", str(graph_file), "-o", str(out), "--nodes", "8",
                 "--faults", "crash=1@3", "--checkpoint-interval", "2"]) == 0
    assert "crash(es)" in capsys.readouterr().out


def test_build_bad_fault_spec_exits_2(tmp_path, graph_file, capsys):
    assert main(["build", str(graph_file), "-o", str(tmp_path / "x.idx"),
                 "--faults", "crash=nope"]) == 2
    assert capsys.readouterr().err.startswith("error:")


def test_build_fault_plan_out_of_range_exits_2(tmp_path, graph_file, capsys):
    assert main(["build", str(graph_file), "-o", str(tmp_path / "x.idx"),
                 "--nodes", "4", "--faults", "crash=9@2"]) == 2
    assert "only 4 nodes" in capsys.readouterr().err


def test_build_faults_rejected_for_serial_tol(tmp_path, graph_file, capsys):
    assert main(["build", str(graph_file), "-o", str(tmp_path / "x.idx"),
                 "--method", "tol", "--faults", "crash=1@2"]) == 2
    assert "serial" in capsys.readouterr().err


def test_build_bad_checkpoint_interval_exits_2(tmp_path, graph_file, capsys):
    assert main(["build", str(graph_file), "-o", str(tmp_path / "x.idx"),
                 "--checkpoint-interval", "0"]) == 2
    assert "at least 1" in capsys.readouterr().err


def test_build_time_limit_exceeded_exits_2(tmp_path, graph_file, capsys):
    assert main(["build", str(graph_file), "-o", str(tmp_path / "x.idx"),
                 "--time-limit", "1e-12"]) == 2
    err = capsys.readouterr().err
    assert err.startswith("error:") and "cut-off" in err


def test_build_out_of_memory_exits_2(tmp_path, graph_file, capsys, monkeypatch):
    from repro.errors import OutOfMemoryError

    def exploding(*args, **kwargs):
        raise OutOfMemoryError(2**40, 2**30, "test build")

    monkeypatch.setattr("repro.cli.build_index", exploding)
    assert main(["build", str(graph_file),
                 "-o", str(tmp_path / "x.idx")]) == 2
    assert capsys.readouterr().err.startswith("error:")


def test_build_superstep_limit_exits_2(tmp_path, graph_file, capsys, monkeypatch):
    from repro.pregel.engine import SuperstepLimitExceeded

    def looping(*args, **kwargs):
        raise SuperstepLimitExceeded("no termination after 7 supersteps")

    monkeypatch.setattr("repro.cli.build_index", looping)
    assert main(["build", str(graph_file),
                 "-o", str(tmp_path / "x.idx")]) == 2
    assert "supersteps" in capsys.readouterr().err


def test_bench_faults_experiment(capsys):
    assert main(["bench", "faults", "--datasets", "GO"]) == 0
    out = capsys.readouterr().out
    assert "recovery s" in out and "identical" in out
    row = next(l for l in out.splitlines() if l.startswith("GO"))
    assert row.rstrip().endswith("1.000000")


def test_bench_interrupt_flushes_partial_results(capsys, monkeypatch):
    from repro.bench.results import ExperimentTable

    def interrupted(dataset_names=None, cost_model=None):
        table = ExperimentTable("Partial fig8", ["b=2"])
        table.set("GO", "b=2", 0.125)
        raise KeyboardInterrupt

    monkeypatch.setattr("repro.bench.harness.run_fig8_batch_size", interrupted)
    assert main(["bench", "fig8"]) == 130
    captured = capsys.readouterr()
    assert "partial results" in captured.err
    assert "Partial fig8" in captured.out
    assert "0.1250" in captured.out


# ----------------------------------------------------------------------
# Scenarios and serve-bench reports
# ----------------------------------------------------------------------

_TINY_SCENARIO = """{
  "name": "cli-tiny",
  "graph": {"kind": "dag", "vertices": 60, "seed": 1},
  "traffic": {
    "pairs": {"count": 200, "seed": 2},
    "arrivals": {"shape": "poisson", "rate": 300000.0, "seed": 3}
  },
  "serving": {"shards": 2, "replicas": 2},
  "expect": {"incorrect_answers_max": 0, "availability_min": 0.99}
}
"""


def test_scenario_list(capsys):
    assert main(["scenario", "list"]) == 0
    out = capsys.readouterr().out
    assert "shard_loss_write_burst" in out
    assert "flash_crowd" in out


def test_scenario_run_file_with_report(tmp_path, capsys):
    scenario = tmp_path / "tiny.json"
    scenario.write_text(_TINY_SCENARIO)
    report = tmp_path / "report.json"
    assert main([
        "scenario", "run", str(scenario),
        "--fail-on-assert", "--report", str(report),
    ]) == 0
    out = capsys.readouterr().out
    assert "cli-tiny" in out
    assert "1/1 scenario(s) passed" in out
    import json as _json
    payload = _json.loads(report.read_text())
    assert payload["ok"] is True


def test_scenario_run_failure_sets_exit_code(tmp_path, capsys, monkeypatch):
    # chdir: without --report/--incidents-dir the flight recorder
    # drops its assertion bundle under ./incidents.
    monkeypatch.chdir(tmp_path)
    scenario = tmp_path / "doomed.json"
    scenario.write_text(_TINY_SCENARIO.replace(
        '"availability_min": 0.99', '"availability_min": 2.0'
    ))
    # Without --fail-on-assert the run reports but exits 0.
    assert main(["scenario", "run", str(scenario)]) == 0
    assert main(["scenario", "run", str(scenario), "--fail-on-assert"]) == 1
    out = capsys.readouterr().out
    assert "0/1 scenario(s) passed" in out
    # A failed expectation always lands an incident bundle.
    bundles = sorted((tmp_path / "incidents").glob("*.json"))
    assert bundles, "expected a scenario_assertion bundle"
    assert "scenario_assertion" in bundles[0].name


def test_scenario_run_unknown_name(capsys):
    assert main(["scenario", "run", "no-such-scenario"]) == 2
    assert "no-such-scenario" in capsys.readouterr().err


@pytest.fixture
def incident_dir(tmp_path):
    """A bundle directory cut by a real trigger engine."""
    from repro.observe.incident import FlightRecorder, TriggerEngine

    recorder = FlightRecorder()
    engine = TriggerEngine(
        recorder, tmp_path / "incidents", context={"scenario": "cli-demo"},
    )
    recorder.add_listener(engine.observe)
    recorder.record("serve.replica_crash", at=0.001, shard=0, replica=0)
    recorder.record("serve.failover", at=0.002, shard=0,
                    from_replica=0, to_replica=1, version=3)
    return tmp_path / "incidents"


def test_incident_list(incident_dir, capsys):
    assert main(["incident", "list", "--dir", str(incident_dir)]) == 0
    out = capsys.readouterr().out
    assert "incident-001-failover" in out
    assert "[cli-demo]" in out
    assert "-> injected replica crash" in out
    assert "1 incident(s)" in out


def test_incident_list_empty_dir(tmp_path, capsys):
    assert main(["incident", "list", "--dir", str(tmp_path)]) == 0
    assert "no incident bundles" in capsys.readouterr().out


def test_incident_show(incident_dir, capsys):
    assert main([
        "incident", "show", "incident-001-failover",
        "--dir", str(incident_dir),
    ]) == 0
    out = capsys.readouterr().out
    assert "serve.replica_crash" in out
    assert "trigger details:" in out


def test_incident_report_text_and_json(incident_dir, capsys):
    assert main([
        "incident", "report", "incident-001", "--dir", str(incident_dir),
    ]) == 0
    out = capsys.readouterr().out
    assert "root causes (ranked)" in out
    assert "injected replica crash on shard 0 replica 0" in out
    assert main([
        "incident", "report", "incident-001", "--dir", str(incident_dir),
        "--json",
    ]) == 0
    import json as _json
    payload = _json.loads(capsys.readouterr().out)
    assert payload["causes"][0]["kind"] == "injected_fault"


def test_incident_unknown_ref_exits_2(incident_dir, capsys):
    assert main([
        "incident", "show", "incident-999", "--dir", str(incident_dir),
    ]) == 2
    assert "no incident bundle" in capsys.readouterr().err


def test_serve_bench_report_written_atomically(tmp_path, capsys):
    report = tmp_path / "bench.json"
    assert main([
        "serve-bench", "--vertices", "80", "--requests", "200",
        "--report", str(report),
    ]) == 0
    import json as _json
    payload = _json.loads(report.read_text())
    assert payload["caching_speedup"] > 0
    assert set(payload["rows"]) == {"cached", "uncached"}
    assert all(
        row["served"] <= row["offered"] for row in payload["rows"].values()
    )


def test_serve_bench_mixed_mode_reports_write_columns(capsys):
    assert main([
        "serve-bench", "--vertices", "120", "--requests", "400",
        "--mode", "mixed", "--writes", "40", "--shards", "2",
        "--seed", "1",
    ]) == 0
    out = capsys.readouterr().out
    assert "update u/s" in out
    assert "stale reads" in out
    assert "applied" in out


def test_serve_bench_mixed_bad_ratio_exits_2(capsys):
    assert main([
        "serve-bench", "--vertices", "60", "--requests", "10",
        "--mode", "mixed", "--writes", "5", "--node-ratio", "1.5",
    ]) == 2
    assert "node_ratio" in capsys.readouterr().err
