"""Tests for rolling-window aggregation and the window detectors."""

import pytest

from repro.observe.windows import (
    HotKeyDetector,
    LatencyRegressionDetector,
    RollingAggregator,
)
from repro.telemetry import MetricsRegistry


class TestRollingAggregator:
    def test_first_window_is_the_baseline(self):
        aggregator = RollingAggregator()
        snapshot = aggregator.step(5.0, {"served": 100})
        assert snapshot.index == 0
        assert snapshot.start == snapshot.end == 5.0
        assert snapshot.deltas == {"served": 100}
        assert snapshot.rates == {"served": 0.0}  # zero-duration window

    def test_deltas_and_rates(self):
        aggregator = RollingAggregator(alpha=0.5)
        aggregator.step(0.0, {"served": 0})
        snapshot = aggregator.step(2.0, {"served": 10})
        assert snapshot.deltas == {"served": 10}
        assert snapshot.rates == {"served": 5.0}
        assert snapshot.ewma_rates == {"served": 5.0}  # first rate seeds EWMA
        snapshot = aggregator.step(4.0, {"served": 30})
        assert snapshot.rates == {"served": 10.0}
        assert snapshot.ewma_rates == {"served": 7.5}  # 0.5*10 + 0.5*5

    def test_empty_window_has_zero_rates_and_keeps_ewma(self):
        aggregator = RollingAggregator()
        aggregator.step(0.0, {"served": 0})
        aggregator.step(1.0, {"served": 100})
        before = dict(aggregator.step(1.0, {"served": 100}).ewma_rates)
        # Zero-duration window: rates are 0, EWMA untouched.
        snapshot = aggregator.step(1.0, {"served": 100})
        assert snapshot.rates == {"served": 0.0}
        assert snapshot.ewma_rates == before

    def test_counter_reset_detected(self):
        aggregator = RollingAggregator()
        aggregator.step(0.0, {"served": 50})
        snapshot = aggregator.step(1.0, {"served": 8})
        # The counter restarted: the delta is the new value, not -42.
        assert snapshot.deltas == {"served": 8}
        assert snapshot.resets == ("served",)
        assert snapshot.rates == {"served": 8.0}

    def test_two_counter_resets_inside_one_window(self):
        # A process restart resets *every* counter it owns at once; the
        # window must report each reset independently and keep other
        # series' deltas untouched.
        aggregator = RollingAggregator()
        aggregator.step(0.0, {"served": 50, "shed": 20, "offered": 70})
        snapshot = aggregator.step(2.0, {"served": 4, "shed": 1, "offered": 90})
        assert snapshot.deltas == {"served": 4, "shed": 1, "offered": 20}
        assert set(snapshot.resets) == {"served", "shed"}
        # Rates stay non-negative through the double reset...
        assert snapshot.rates == {"served": 2.0, "shed": 0.5, "offered": 10.0}
        # ...and the next window is measured against the *reset* values,
        # not the pre-restart highs.
        after = aggregator.step(3.0, {"served": 10, "shed": 3, "offered": 95})
        assert after.deltas == {"served": 6, "shed": 2, "offered": 5}
        assert after.resets == ()

    def test_new_series_mid_stream(self):
        aggregator = RollingAggregator()
        aggregator.step(0.0, {"a": 1})
        snapshot = aggregator.step(1.0, {"a": 2, "b": 5})
        assert snapshot.deltas == {"a": 1, "b": 5}
        assert snapshot.resets == ()

    def test_time_going_backwards_raises(self):
        aggregator = RollingAggregator()
        aggregator.step(2.0, {})
        with pytest.raises(ValueError, match="backwards"):
            aggregator.step(1.0, {})

    def test_bad_alpha_rejected(self):
        with pytest.raises(ValueError):
            RollingAggregator(alpha=0.0)
        with pytest.raises(ValueError):
            RollingAggregator(alpha=1.5)

    def test_step_registry_uses_flat_view(self):
        registry = MetricsRegistry()
        registry.counter("hits").inc(3)
        aggregator = RollingAggregator()
        snapshot = aggregator.step_registry(1.0, registry)
        assert snapshot.values["hits"] == 3


class TestHotKeyDetector:
    def test_flags_only_dominant_keys(self):
        detector = HotKeyDetector(share_threshold=0.25, min_count=10)
        counts = {"hot": 60, "warm": 25, "cold": 15}
        hot = detector.observe(counts)
        assert [h.key for h in hot] == ["hot", "warm"]
        assert hot[0].share == 0.6

    def test_min_count_suppresses_tiny_windows(self):
        detector = HotKeyDetector(share_threshold=0.25, min_count=10)
        assert detector.observe({"a": 2, "b": 1}) == []

    def test_empty_window(self):
        assert HotKeyDetector().observe({}) == []

    def test_empty_window_with_zero_counts(self):
        # All-zero counts are an empty window too: total 0 must not
        # divide, and no key can be "100% of nothing".
        assert HotKeyDetector().observe({"a": 0, "b": 0}) == []

    def test_deterministic_tie_break(self):
        detector = HotKeyDetector(share_threshold=0.1, min_count=10)
        hot = detector.observe({"b": 50, "a": 50})
        assert [h.key for h in hot] == ["a", "b"]


class TestLatencyRegressionDetector:
    def test_flags_after_warmup_only(self):
        detector = LatencyRegressionDetector(factor=2.0, warmup=3)
        assert detector.observe(1.0) is False
        assert detector.observe(1.0) is False
        assert detector.observe(1.0) is False
        assert detector.observe(5.0) is True  # past warmup, 5x the baseline

    def test_regression_not_folded_into_baseline(self):
        detector = LatencyRegressionDetector(factor=2.0, warmup=1)
        detector.observe(1.0)
        detector.observe(1.0)
        baseline = detector.baseline
        assert detector.observe(100.0) is True
        assert detector.baseline == baseline  # spike kept out of the EWMA
        assert detector.observe(100.0) is True  # sustained: keeps firing

    def test_normal_values_track_baseline(self):
        detector = LatencyRegressionDetector(alpha=0.5, warmup=1)
        detector.observe(1.0)
        detector.observe(2.0)
        assert detector.baseline == pytest.approx(1.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            LatencyRegressionDetector(factor=1.0)
        with pytest.raises(ValueError):
            LatencyRegressionDetector(warmup=0)
