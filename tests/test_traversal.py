"""Unit and property tests for BFS, DFS, and trimmed BFS (Algorithm 2)."""

from hypothesis import given, settings

from repro.graph.digraph import DiGraph
from repro.graph.generators import paper_example_graph, paper_example_order
from repro.graph.order import VertexOrder, degree_order
from repro.graph.traversal import (
    bfs_order,
    dfs_postorder,
    reachable_set,
    trimmed_bfs,
)
from tests.conftest import digraphs


def test_bfs_order_levels():
    g = DiGraph(6, [(0, 1), (0, 2), (1, 3), (2, 3), (3, 4)])
    order = bfs_order(g, 0)
    assert order[0] == 0
    assert set(order[1:3]) == {1, 2}
    assert order[3:] == [3, 4]


def test_bfs_unreachable_not_included():
    g = DiGraph(4, [(0, 1), (2, 3)])
    assert set(bfs_order(g, 0)) == {0, 1}


def test_reachable_set_includes_source():
    g = DiGraph(3, [])
    assert reachable_set(g, 1) == {1}


def test_reachable_set_cycle():
    g = DiGraph(3, [(0, 1), (1, 2), (2, 0)])
    assert reachable_set(g, 0) == {0, 1, 2}


def test_dfs_postorder_covers_all_vertices_once():
    g = DiGraph(5, [(0, 1), (1, 2), (3, 4)])
    post = dfs_postorder(g)
    assert sorted(post) == list(range(5))


def test_dfs_postorder_on_dag_respects_descendants():
    """On a DAG, a vertex appears after everything it reaches first."""
    g = DiGraph(4, [(0, 1), (1, 2), (0, 3)])
    post = dfs_postorder(g, roots=[0])
    position = {v: i for i, v in enumerate(post)}
    assert position[2] < position[1] < position[0]
    assert position[3] < position[0]


def test_dfs_postorder_with_custom_roots():
    g = DiGraph(4, [(0, 1), (2, 3)])
    post = dfs_postorder(g, roots=[2, 0, 1, 3])
    assert sorted(post) == [0, 1, 2, 3]
    assert post.index(3) < post.index(2)


def test_trimmed_bfs_paper_example_8():
    """Example 8: BFS_low(v3) and BFS_hig(v3) on Fig. 1."""
    g = paper_example_graph()
    order = paper_example_order()
    result = trimmed_bfs(g, 2, order)  # v3
    assert {x + 1 for x in result.low} == {3, 4, 6, 10, 11}
    assert {x + 1 for x in result.high} == {1, 2}
    assert result.edges_scanned > 0


def test_trimmed_bfs_source_always_in_low():
    g = DiGraph(3, [])
    order = VertexOrder([0, 1, 2])
    assert trimmed_bfs(g, 2, order).low == [2]


def test_trimmed_bfs_highest_order_source_sees_everything():
    g = DiGraph(4, [(0, 1), (1, 2), (2, 3)])
    order = VertexOrder([0, 1, 2, 3])
    result = trimmed_bfs(g, 0, order)
    assert set(result.low) == {0, 1, 2, 3}
    assert result.high == []


def test_trimmed_bfs_blocked_branch_not_explored():
    # 0 -> 1 -> 2 where 1 has the highest order: BFS from 0 stops at 1.
    g = DiGraph(3, [(0, 1), (1, 2)])
    order = VertexOrder([1, 0, 2])
    result = trimmed_bfs(g, 0, order)
    assert set(result.low) == {0}
    assert set(result.high) == {1}


def test_trimmed_bfs_cycle_back_to_source():
    """A cycle returning to the source must not re-add it anywhere."""
    g = DiGraph(3, [(0, 1), (1, 0), (1, 2)])
    order = VertexOrder([0, 1, 2])
    result = trimmed_bfs(g, 0, order)
    assert result.low == [0, 1, 2]
    assert result.high == []


def _trimmed_oracle(g: DiGraph, source: int, order: VertexOrder):
    """Brute-force BFS_low/BFS_hig: expand only below-source order."""
    low = {source}
    frontier = [source]
    high = set()
    while frontier:
        nxt = []
        for u in frontier:
            for w in g.out_neighbors(u):
                if w in low or w in high:
                    continue
                if order.higher(source, w):
                    low.add(w)
                    nxt.append(w)
                else:
                    high.add(w)
        frontier = nxt
    return low, high


@settings(max_examples=50, deadline=None)
@given(digraphs())
def test_property_trimmed_bfs_matches_oracle(g):
    order = degree_order(g)
    for source in range(min(g.num_vertices, 8)):
        result = trimmed_bfs(g, source, order)
        low, high = _trimmed_oracle(g, source, order)
        assert set(result.low) == low
        assert set(result.high) == high
        # low and high are disjoint, and high vertices all outrank source.
        assert not (low & high)
        assert all(order.higher(u, source) for u in high)


@settings(max_examples=50, deadline=None)
@given(digraphs())
def test_property_trimmed_low_is_subset_of_reachable(g):
    order = degree_order(g)
    for source in range(min(g.num_vertices, 5)):
        result = trimmed_bfs(g, source, order)
        assert set(result.low) <= reachable_set(g, source)
