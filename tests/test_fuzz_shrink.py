"""Shrinker tests: delta-debugging minimises real and injected bugs.

The headline test injects a deliberate off-by-one into DRL_b's batch
sequence (the last batch silently loses a vertex), checks the oracle
matrix catches it, and checks the shrinker reduces the failing case to
a repro of at most 12 vertices.
"""

import pytest

import repro.core.drl_batch
from repro.core.batching import batch_sequence
from repro.fuzz import generate_cases, run_case, shrink_case
from repro.fuzz.cases import FuzzCase
from repro.fuzz.oracles import ORACLES
from repro.fuzz.runner import run_fuzz


# ----------------------------------------------------------------------
# The acceptance scenario: off-by-one in DRL_b batching
# ----------------------------------------------------------------------
@pytest.fixture
def broken_batching(monkeypatch):
    """DRL_b builds on a batch sequence whose last batch lost a vertex."""

    def off_by_one(order, initial_size=2, growth_factor=2.0):
        batches = batch_sequence(order, initial_size, growth_factor)
        if len(batches) > 1 and len(batches[-1]) > 1:
            batches[-1] = batches[-1][:-1]
        return batches

    monkeypatch.setattr(repro.core.drl_batch, "batch_sequence", off_by_one)


def test_batching_off_by_one_is_caught_and_shrunk(broken_batching):
    caught = None
    for case in generate_cases(seed=42, count=25):
        result = run_case(case)
        if not result.ok:
            caught = (case, result)
            break
    assert caught is not None, "off-by-one DRL_b batching was not detected"
    case, result = caught
    assert "methods-agree" in result.fingerprints

    reduction = shrink_case(case, fingerprint="methods-agree")
    assert reduction.case.num_vertices <= 12
    assert "drl-b" in reduction.failure.message
    # The reduced case still fails on its own (replayable repro).
    replay = run_case(reduction.case)
    assert "methods-agree" in replay.fingerprints


def test_batching_off_by_one_end_to_end_campaign(broken_batching, tmp_path):
    report = run_fuzz(seed=42, count=25, failures_dir=tmp_path)
    assert not report.ok
    for record in report.failures:
        assert record.reduced_vertices <= 12
        assert record.path is not None and record.path.exists()


# ----------------------------------------------------------------------
# Shrinker mechanics on controlled stubs
# ----------------------------------------------------------------------
def _with_stub(stub):
    oracles = dict(ORACLES)
    oracles["cover"] = stub
    return oracles


def test_shrink_finds_vertex_threshold():
    def stub(ctx):
        n = ctx.graph.num_vertices
        return [f"{n} vertices"] if n >= 5 else []

    case = generate_cases(seed=2, count=1)[0]
    reduction = shrink_case(case, oracles=_with_stub(stub))
    assert reduction.case.num_vertices == 5
    assert reduction.fingerprint == "cover"


def test_shrink_reduces_edges_and_config():
    def stub(ctx):
        return ["has an edge"] if ctx.graph.num_edges >= 1 else []

    case = generate_cases(seed=4, count=3)[1]
    reduction = shrink_case(case, oracles=_with_stub(stub))
    assert len(reduction.case.edges) == 1
    assert reduction.case.num_vertices <= 2
    # Config collapsed to the simplest one that still fails.
    assert reduction.case.faults is None
    assert reduction.case.updates == ()
    assert reduction.case.num_nodes == 1
    assert reduction.case.partitioner == "hash"


def test_shrink_drops_update_ops():
    def stub(ctx):
        return ["too many updates"] if len(ctx.case.updates) >= 3 else []

    case = FuzzCase(
        case_id=0, family="cyclic", seed=8, num_vertices=6,
        updates=tuple(("insert", 0, i) for i in range(1, 6)),
    )
    reduction = shrink_case(case, oracles=_with_stub(stub))
    assert len(reduction.case.updates) == 3


def test_shrink_rejects_passing_case():
    case = generate_cases(seed=42, count=1)[0]
    with pytest.raises(ValueError, match="does not fail"):
        shrink_case(case)


def test_shrink_rejects_unobserved_fingerprint():
    def stub(ctx):
        return ["always fails"]

    case = generate_cases(seed=1, count=1)[0]
    with pytest.raises(ValueError, match="fingerprint"):
        shrink_case(case, fingerprint="soundness", oracles=_with_stub(stub))


def test_shrink_respects_evaluation_budget():
    calls = {"n": 0}

    def stub(ctx):
        calls["n"] += 1
        return [f"{ctx.graph.num_vertices} vertices"]

    case = generate_cases(seed=3, count=1)[0]
    reduction = shrink_case(case, oracles=_with_stub(stub), max_evaluations=10)
    assert reduction.evaluations <= 10
    # Still returns a (partially) reduced, failing case.
    assert reduction.case.num_vertices <= case.concretize().num_vertices


def test_shrink_preserves_failure_mode_not_just_any_failure():
    """Shrinking a soundness failure must not drift into accepting a
    case that only fails some other oracle."""

    def cover_stub(ctx):
        # Fails on every graph — would dominate if fingerprints mixed.
        return ["cover always fails"]

    def soundness_stub(ctx):
        n = ctx.graph.num_vertices
        return [f"{n} vertices"] if n >= 7 else []

    oracles = dict(ORACLES)
    oracles["cover"] = cover_stub
    oracles["soundness"] = soundness_stub
    case = generate_cases(seed=6, count=1)[0]
    reduction = shrink_case(case, fingerprint="soundness", oracles=oracles)
    assert reduction.case.num_vertices == 7
    assert reduction.fingerprint == "soundness"
