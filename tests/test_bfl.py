"""Tests for BFL^C and BFL^D."""

import pytest
from hypothesis import given, settings

from repro.baselines.bfl import BflIndex, build_bfl
from repro.baselines.bfl_distributed import build_bfl_distributed
from repro.baselines.transitive_closure import TransitiveClosure
from repro.errors import OutOfMemoryError
from repro.graph.digraph import DiGraph
from repro.graph.generators import (
    citation_graph,
    random_digraph,
    social_graph,
)
from repro.pregel.cost_model import CostModel
from repro.pregel.serial import SerialMeter
from tests.conftest import digraphs


@settings(max_examples=50, deadline=None)
@given(digraphs())
def test_property_bfl_always_correct(g):
    """BFL never returns a wrong answer (labels + fallback search)."""
    oracle = TransitiveClosure(g)
    bfl = build_bfl(g, seed=3)
    for s in range(g.num_vertices):
        for t in range(g.num_vertices):
            assert bfl.query(s, t) == oracle.query(s, t), (s, t)


@settings(max_examples=25, deadline=None)
@given(digraphs())
def test_property_negative_label_answers_sound(g):
    """When the labels alone answer, the answer must be right."""
    oracle = TransitiveClosure(g)
    bfl = build_bfl(g, seed=4)
    for s in range(g.num_vertices):
        for t in range(g.num_vertices):
            answer, fallback = bfl.query_verbose(s, t)
            if not fallback:
                assert answer == oracle.query(s, t)


def test_same_scc_is_immediate():
    g = DiGraph(3, [(0, 1), (1, 0), (1, 2)])
    bfl = build_bfl(g)
    answer, fallback = bfl.query_verbose(0, 1)
    assert answer and not fallback


def test_tree_descendant_answered_by_interval():
    g = DiGraph(4, [(0, 1), (1, 2), (2, 3)])
    bfl = build_bfl(g)
    answer, fallback = bfl.query_verbose(0, 3)
    assert answer and not fallback


def test_bloom_width_affects_size():
    g = social_graph(300, seed=5)
    narrow = build_bfl(g, s_bits=64)
    wide = build_bfl(g, s_bits=512)
    assert wide.size_bytes() > narrow.size_bytes()
    oracle = TransitiveClosure(g)
    for s in range(0, 300, 37):
        for t in range(0, 300, 41):
            assert narrow.query(s, t) == oracle.query(s, t)
            assert wide.query(s, t) == oracle.query(s, t)


def test_meter_charges_build_and_query():
    g = citation_graph(200, seed=6)
    cm = CostModel(time_limit_seconds=None)
    meter = SerialMeter(cm)
    bfl = build_bfl(g, meter=meter)
    assert meter.units > g.num_edges
    qmeter = SerialMeter(cm)
    bfl.query(0, 150, meter=qmeter)
    assert qmeter.units >= 2


def test_memory_gate():
    g = social_graph(200, seed=7)
    with pytest.raises(OutOfMemoryError):
        build_bfl(g, meter=SerialMeter(CostModel(node_memory_bytes=64)))


def test_size_bytes_formula():
    g = DiGraph(3, [(0, 1)])  # 3 singleton components
    bfl = build_bfl(g, s_bits=160)
    assert bfl.size_bytes() == 3 * (2 * 20 + 16) + 4 * 3


def test_deterministic_given_seed():
    g = random_digraph(60, 200, seed=8)
    a = build_bfl(g, seed=1)
    b = build_bfl(g, seed=1)
    assert a._bloom_out == b._bloom_out
    assert a._bloom_in == b._bloom_in


# ----------------------------------------------------------------------
# Distributed BFL
# ----------------------------------------------------------------------
@settings(max_examples=25, deadline=None)
@given(digraphs())
def test_property_bfl_distributed_matches_centralized(g):
    central = build_bfl(g, seed=9)
    distributed, _stats = build_bfl_distributed(g, num_nodes=4, seed=9)
    for s in range(g.num_vertices):
        for t in range(g.num_vertices):
            assert distributed.query(s, t) == central.query(s, t)


def test_distributed_build_charges_hops():
    g = social_graph(400, seed=10)
    _index, stats = build_bfl_distributed(g, num_nodes=8)
    assert stats.remote_messages > 0
    assert stats.communication_seconds > 0
    assert stats.computation_seconds > 0


def test_distributed_single_node_no_hops():
    g = social_graph(200, seed=11)
    _index, stats = build_bfl_distributed(g, num_nodes=1)
    assert stats.remote_messages == 0
    assert stats.communication_seconds == 0.0


def test_distributed_query_cost_positive_and_higher_when_traversing():
    g = social_graph(500, seed=12)
    index, _stats = build_bfl_distributed(g, num_nodes=8)
    # All queries pay at least the label fetch.
    _answer, cheap = index.query_with_cost(0, 0)
    assert cheap > 0
    costs = []
    for s in range(0, 500, 23):
        for t in range(0, 500, 29):
            answer, seconds = index.query_with_cost(s, t)
            costs.append(seconds)
    assert max(costs) > min(costs)  # some queries needed the graph


def test_distributed_respects_time_limit():
    from repro.errors import TimeLimitExceeded

    g = social_graph(400, seed=13)
    with pytest.raises(TimeLimitExceeded):
        build_bfl_distributed(
            g, num_nodes=8, cost_model=CostModel(time_limit_seconds=1e-9)
        )
