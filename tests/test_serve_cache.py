"""Tests for the query cache, including the staleness property."""

import pytest

from repro.baselines.transitive_closure import TransitiveClosure
from repro.core.dynamic import DynamicReachabilityIndex
from repro.graph.generators import random_dag, social_graph
from repro.pregel.cost_model import CostModel
from repro.serve import CachingBackend, QueryCache, ShardedIndexBackend, ShardedLabelStore
from repro.workloads.queries import random_pairs
from repro.workloads.updates import update_stream

_NO_LIMIT = CostModel(time_limit_seconds=None)


# -- LRU mechanics -----------------------------------------------------


def test_lru_eviction_order():
    cache = QueryCache(capacity=2)
    cache.put(0, 1, True)
    cache.put(0, 2, True)
    assert cache.get(0, 1) is True  # refresh (0, 1)
    cache.put(0, 3, True)           # evicts (0, 2), the LRU entry
    assert cache.evictions == 1
    assert cache.get(0, 2) is None
    assert cache.get(0, 1) is True
    assert cache.get(0, 3) is True


def test_put_existing_key_updates_without_eviction():
    cache = QueryCache(capacity=1)
    cache.put(0, 1, True)
    cache.put(0, 1, False)
    assert cache.evictions == 0
    assert cache.get(0, 1) is False


def test_hit_and_miss_counters():
    cache = QueryCache()
    assert cache.hit_rate == 0.0
    assert cache.get(1, 2) is None
    cache.put(1, 2, False)
    assert cache.get(1, 2) is False
    assert (cache.hits, cache.misses) == (1, 1)
    assert cache.hit_rate == 0.5


def test_capacity_must_be_positive():
    with pytest.raises(ValueError):
        QueryCache(capacity=0)


def test_negative_caching_disabled_skips_false_answers():
    cache = QueryCache(negative_caching=False)
    cache.put(0, 1, False)
    assert len(cache) == 0
    cache.put(0, 1, True)
    assert cache.get(0, 1) is True


def test_clear_counts_as_invalidation():
    cache = QueryCache()
    cache.put(0, 1, True)
    cache.put(0, 2, False)
    cache.clear()
    assert len(cache) == 0
    assert cache.invalidated == 2


# -- monotonicity-aware invalidation -----------------------------------


def test_insert_invalidates_only_negatives():
    cache = QueryCache()
    cache.put(0, 1, True)
    cache.put(0, 2, False)
    cache.put(3, 4, False)
    dropped = cache.invalidate_for_update("insert", 7, 8)
    assert dropped == 2
    assert cache.invalidated == 2
    assert cache.get(0, 1) is True      # positives survive inserts
    assert cache.get(0, 2) is None
    assert cache.get(3, 4) is None


def test_delete_invalidates_only_positives():
    cache = QueryCache()
    cache.put(0, 1, True)
    cache.put(0, 2, False)
    dropped = cache.invalidate_for_update("delete", 7, 8)
    assert dropped == 1
    assert cache.get(0, 1) is None
    assert cache.get(0, 2) is False     # negatives survive deletes


def test_unknown_op_rejected():
    with pytest.raises(ValueError, match="unknown update op"):
        QueryCache().invalidate_for_update("rename", 0, 1)


def test_attach_and_detach():
    graph = random_dag(30, 60, seed=2)
    dynamic = DynamicReachabilityIndex(graph)
    cache = QueryCache()
    cache.put(0, 1, True)
    cache.put(0, 2, False)
    cache.attach(dynamic)
    stream = update_stream(graph, 1, insert_ratio=1.0, seed=0)
    op, u, v = stream[0]
    assert dynamic.insert_edge(u, v)
    assert cache.get(0, 2) is None      # negative evicted by the insert
    cache.detach(dynamic)
    cache.put(5, 6, False)
    assert dynamic.delete_edge(u, v)
    assert cache.get(5, 6) is False     # detached: no more invalidation


def test_noop_updates_do_not_invalidate():
    graph = random_dag(20, 40, seed=3)
    dynamic = DynamicReachabilityIndex(graph)
    cache = QueryCache()
    cache.attach(dynamic)
    cache.put(0, 1, True)
    cache.put(0, 2, False)
    u, v = next(iter(graph.edges()))
    assert not dynamic.insert_edge(u, v)   # already present: no-op
    assert cache.invalidated == 0
    assert len(cache) == 2


# -- CachingBackend ----------------------------------------------------


class _CountingBackend:
    def __init__(self, answer=True, seconds=1.0):
        self.calls = 0
        self._answer = answer
        self._seconds = seconds

    def query_with_cost(self, s, t):
        self.calls += 1
        return self._answer, self._seconds


def test_caching_backend_hit_skips_inner():
    inner = _CountingBackend(seconds=1.0)
    backend = CachingBackend(inner, cost_model=_NO_LIMIT)
    answer, miss_cost = backend.query_with_cost(1, 2)
    assert answer is True and inner.calls == 1
    answer, hit_cost = backend.query_with_cost(1, 2)
    assert answer is True and inner.calls == 1  # served from cache
    assert hit_cost == _NO_LIMIT.t_op
    assert miss_cost == 1.0 + _NO_LIMIT.t_op


# -- the staleness property --------------------------------------------
# ISSUE.md: "insert/delete an edge, assert no stale cached answer
# survives — reuse the fuzz dynamic-vs-rebuild oracle as a
# serving-layer oracle".  After every applied update, every answer the
# cached serving stack returns must match a transitive closure of the
# *current* graph.


def _assert_no_stale_answers(graph, updates, pairs):
    dynamic = DynamicReachabilityIndex(graph)
    store = ShardedLabelStore(dynamic, num_shards=4, cost_model=_NO_LIMIT)
    backend = CachingBackend(
        ShardedIndexBackend(store), QueryCache(), cost_model=_NO_LIMIT
    )
    backend.cache.attach(dynamic)
    # Warm the cache so there is something to stale-ify.
    for s, t in pairs:
        backend.query_with_cost(s, t)
    for op, u, v in updates:
        applied = (
            dynamic.insert_edge(u, v) if op == "insert" else dynamic.delete_edge(u, v)
        )
        assert applied
        oracle = TransitiveClosure(dynamic.current_graph())
        for s, t in pairs:
            answer, _ = backend.query_with_cost(s, t)
            assert answer == oracle.query(s, t), (
                f"stale answer for ({s}, {t}) after {op}({u}, {v})"
            )
    assert backend.cache.hits > 0          # the test must not be vacuous
    assert backend.cache.invalidated > 0   # invalidation actually fired


def test_no_stale_answer_after_updates_dag():
    graph = random_dag(40, 90, seed=7)
    updates = update_stream(graph, 12, insert_ratio=0.5, seed=7)
    pairs = random_pairs(graph.num_vertices, 60, seed=7)
    _assert_no_stale_answers(graph, updates, pairs)


def test_no_stale_answer_after_updates_cyclic():
    graph = social_graph(50, seed=4)
    updates = update_stream(graph, 10, insert_ratio=0.4, seed=4)
    pairs = random_pairs(graph.num_vertices, 60, seed=4)
    _assert_no_stale_answers(graph, updates, pairs)


def test_stale_answer_without_invalidation_is_the_counterfactual():
    # Sanity check that the staleness property is non-trivial: the same
    # stack WITHOUT the invalidation hook does serve a stale answer.
    graph = random_dag(40, 90, seed=7)
    dynamic = DynamicReachabilityIndex(graph)
    store = ShardedLabelStore(dynamic, num_shards=4, cost_model=_NO_LIMIT)
    backend = CachingBackend(
        ShardedIndexBackend(store), QueryCache(), cost_model=_NO_LIMIT
    )  # note: no attach()
    pairs = random_pairs(graph.num_vertices, 200, seed=1)
    for s, t in pairs:
        backend.query_with_cost(s, t)
    for op, u, v in update_stream(graph, 15, insert_ratio=0.5, seed=9):
        if op == "insert":
            dynamic.insert_edge(u, v)
        else:
            dynamic.delete_edge(u, v)
    oracle = TransitiveClosure(dynamic.current_graph())
    stale = sum(
        backend.query_with_cost(s, t)[0] != oracle.query(s, t) for s, t in pairs
    )
    assert stale > 0


# -- hypothesis: the property over arbitrary update interleavings ------
# The deterministic tests above fix one stream; here hypothesis drives
# the interleaving of inserts, deletes, and reads.  The invariant is
# the monotonicity contract the serving tier leans on everywhere: an
# insert may only flip answers False->True, a delete only True->False,
# and a cache attached to the dynamic index never serves an answer
# that disagrees with the transitive closure of the current graph.

from hypothesis import given, settings
from hypothesis import strategies as st

_N = 24


@st.composite
def _interleavings(draw):
    """A list of ("read", s, t) / ("insert", u, v) / ("delete", u, v)."""
    ops = []
    for _ in range(draw(st.integers(min_value=4, max_value=30))):
        kind = draw(st.sampled_from(["read", "read", "insert", "delete"]))
        u = draw(st.integers(min_value=0, max_value=_N - 1))
        v = draw(st.integers(min_value=0, max_value=_N - 1))
        ops.append((kind, u, v))
    return ops


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(min_value=0, max_value=9), ops=_interleavings())
def test_cached_answers_track_closure_under_any_interleaving(seed, ops):
    graph = random_dag(_N, 2 * _N, seed=seed)
    dynamic = DynamicReachabilityIndex(graph)
    store = ShardedLabelStore(dynamic, num_shards=2, cost_model=_NO_LIMIT)
    backend = CachingBackend(
        ShardedIndexBackend(store), QueryCache(), cost_model=_NO_LIMIT
    )
    backend.cache.attach(dynamic)
    oracle = TransitiveClosure(dynamic.current_graph())
    dirty = False
    for kind, u, v in ops:
        if kind == "read":
            if dirty:
                oracle = TransitiveClosure(dynamic.current_graph())
                dirty = False
            before = oracle.query(u, v)
            answer, _ = backend.query_with_cost(u, v)
            assert answer == before
            # Read twice: the second answer comes from the cache and
            # must agree with the first.
            again, _ = backend.query_with_cost(u, v)
            assert again == before
        elif kind == "insert":
            if u != v and not dynamic.has_edge(u, v):
                dynamic.insert_edge(u, v)
                dirty = True
        else:
            if dynamic.has_edge(u, v):
                dynamic.delete_edge(u, v)
                dirty = True


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=9),
    insert_ratio=st.floats(min_value=0.0, max_value=1.0),
    count=st.integers(min_value=1, max_value=12),
)
def test_update_direction_respects_monotonicity(seed, insert_ratio, count):
    # Inserts may only flip False->True; deletes only True->False.
    graph = random_dag(_N, 2 * _N, seed=seed)
    dynamic = DynamicReachabilityIndex(graph)
    pairs = random_pairs(_N, 40, seed=seed)
    for op, u, v in update_stream(graph, count, insert_ratio=insert_ratio,
                                  seed=seed):
        before = {pair: dynamic.query(*pair) for pair in pairs}
        if op == "insert":
            dynamic.insert_edge(u, v)
        else:
            dynamic.delete_edge(u, v)
        oracle = TransitiveClosure(dynamic.current_graph())
        for (s, t), was in before.items():
            now = oracle.query(s, t)
            assert now == dynamic.query(s, t)
            if op == "insert":
                assert now or not was, f"insert flipped ({s},{t}) True->False"
            else:
                assert was or not now, f"delete flipped ({s},{t}) False->True"
