"""Tests for the telemetry subsystem: spans, metrics, sinks, report."""

import json
import logging

import pytest

from repro import telemetry
from repro.core.drl import drl_index
from repro.core.drl_basic import drl_basic_index
from repro.core.drl_batch import drl_batch_index
from repro.errors import TimeLimitExceeded
from repro.graph.generators import random_digraph
from repro.graph.order import degree_order
from repro.pregel.cost_model import CostModel
from repro.pregel.engine import Cluster
from repro.pregel.vertex_program import VertexProgram
from repro.query.service import IndexBackend, QueryService
from repro.telemetry import (
    MetricsRegistry,
    Tracer,
    current_tracer,
    exponential_buckets,
    session,
    trace_span,
)
from repro.telemetry.metrics import percentile_from_record
from repro.telemetry.sinks import InMemorySink, JsonlSink, LoggingSink
from repro.telemetry.spans import NULL_TRACER

_NO_LIMIT = CostModel(time_limit_seconds=None)


class _Flood(VertexProgram):
    """Flood from vertex 0; no finalize work."""

    def __init__(self):
        self.visited: set[int] = set()

    def compute(self, ctx, v, messages):
        if ctx.superstep == 1 and v != 0:
            return
        if v in self.visited:
            return
        self.visited.add(v)
        for w in ctx.graph.out_neighbors(v):
            ctx.charge()
            ctx.send(w, None)


# ----------------------------------------------------------------------
# Spans and tracer
# ----------------------------------------------------------------------
def test_spans_nest_and_record_parents():
    sink = InMemorySink()
    tracer = Tracer([sink])
    with tracer.span("outer", dataset="X") as outer:
        with tracer.span("inner") as inner:
            inner.add_simulated(1.5)
        outer.set(entries=7)
    assert [s.name for s in sink.spans] == ["inner", "outer"]  # finish order
    inner, outer = sink.spans
    assert inner.parent_id == outer.span_id
    assert outer.parent_id is None
    assert inner.simulated_seconds == 1.5
    assert outer.attrs == {"dataset": "X", "entries": 7}
    assert outer.wall_seconds >= inner.wall_seconds >= 0


def test_span_records_exception_status():
    sink = InMemorySink()
    tracer = Tracer([sink])
    with pytest.raises(ValueError):
        with tracer.span("doomed"):
            raise ValueError("boom")
    assert sink.spans[0].status == "ValueError"
    assert sink.spans[0].end_wall is not None


def test_events_attach_to_current_span():
    sink = InMemorySink()
    tracer = Tracer([sink])
    with tracer.span("run") as span:
        tracer.event("tick", superstep=1)
    assert sink.events[0].span_id == span.span_id
    assert sink.events[0].attrs == {"superstep": 1}
    tracer.event("orphan")
    assert sink.events[1].span_id is None


def test_null_tracer_is_default_and_noop():
    assert current_tracer() is NULL_TRACER
    assert not telemetry.enabled()
    with trace_span("nothing", x=1) as span:
        span.set(y=2)
        span.add_simulated(3.0)
    assert current_tracer() is NULL_TRACER


def test_session_installs_and_restores():
    sink = InMemorySink()
    outside_metrics = telemetry.current_metrics()
    with session([sink]) as tracer:
        assert telemetry.enabled()
        assert current_tracer() is tracer
        assert telemetry.current_metrics() is not outside_metrics
        telemetry.current_metrics().counter("c").inc(3)
        with trace_span("work"):
            pass
    assert not telemetry.enabled()
    assert telemetry.current_metrics() is outside_metrics
    # Metrics were flushed into the sink at session end.
    assert sink.metrics == [
        {"kind": "metric", "metric": "counter", "name": "c", "value": 3}
    ]
    assert [s.name for s in sink.spans] == ["work"]


def test_sessions_nest():
    outer_sink, inner_sink = InMemorySink(), InMemorySink()
    with session([outer_sink]):
        with trace_span("outer-span"):
            pass
        with session([inner_sink]):
            with trace_span("inner-span"):
                pass
        with trace_span("outer-span-2"):
            pass
    assert [s.name for s in inner_sink.spans] == ["inner-span"]
    assert [s.name for s in outer_sink.spans] == ["outer-span", "outer-span-2"]


# ----------------------------------------------------------------------
# Sinks
# ----------------------------------------------------------------------
def test_jsonl_sink_writes_schema(tmp_path):
    path = tmp_path / "trace.jsonl"
    with session([JsonlSink(path)]):
        with trace_span("outer", dataset="GO"):
            telemetry.trace_event("tick", n=1)
        telemetry.current_metrics().histogram("h").observe(2e-7)
    records = [json.loads(line) for line in path.read_text().splitlines()]
    kinds = [r["kind"] for r in records]
    assert kinds == ["event", "span", "metric"]
    event, span, metric = records
    assert event["name"] == "tick" and event["attrs"] == {"n": 1}
    assert event["span"] == span["id"]
    assert span["name"] == "outer"
    assert span["attrs"] == {"dataset": "GO"}
    assert span["wall_seconds"] >= 0
    assert "simulated_seconds" in span and "status" in span
    assert metric["metric"] == "histogram" and metric["count"] == 1


def test_logging_sink_bridges_to_stdlib(caplog):
    logger = logging.getLogger("repro.telemetry.test")
    with caplog.at_level(logging.INFO, logger=logger.name):
        with session([LoggingSink(logger)]):
            with trace_span("logged.span", dataset="GO"):
                pass
            telemetry.current_metrics().counter("queries").inc(2)
    messages = [r.getMessage() for r in caplog.records]
    assert any("span logged.span" in m and "dataset=GO" in m for m in messages)
    assert any("metric queries=2" in m for m in messages)


# ----------------------------------------------------------------------
# Metrics
# ----------------------------------------------------------------------
def test_counter_gauge_basics():
    registry = MetricsRegistry()
    registry.counter("c").inc()
    registry.counter("c").inc(4)
    registry.gauge("g").set(2.5)
    registry.gauge("g").add(-0.5)
    assert registry.as_dict() == {"c": 5, "g": 2.0}
    with pytest.raises(ValueError):
        registry.counter("c").inc(-1)
    with pytest.raises(TypeError):
        registry.gauge("c")  # already a counter


def test_histogram_observe_and_percentiles():
    registry = MetricsRegistry()
    hist = registry.histogram("lat", buckets=(1.0, 10.0, 100.0))
    for value in (0.5, 0.6, 5.0, 50.0):
        hist.observe(value)
    assert hist.count == 4
    assert hist.min == 0.5 and hist.max == 50.0
    assert hist.mean == pytest.approx(14.025)
    # Ranks 1-2 land in the first bucket (bound 1.0), rank 3 in the
    # second (bound 10.0), rank 4 in the third (capped at the max).
    assert hist.percentile(0.50) == 1.0
    assert hist.percentile(0.75) == 10.0
    assert hist.percentile(1.0) == 50.0
    overflow = registry.histogram("lat", buckets=(1.0, 10.0, 100.0))
    assert overflow is hist  # get-or-create
    hist.observe(1e6)
    assert hist.percentile(1.0) == 1e6  # overflow bucket -> exact max
    flat = registry.as_dict()
    assert flat["lat.count"] == 5
    assert flat["lat.p50"] == 1.0


def test_histogram_record_roundtrip():
    registry = MetricsRegistry()
    hist = registry.histogram("h", buckets=exponential_buckets(1e-8, 10, 6))
    for value in (2e-8, 3e-7, 4e-6, 5e-5):
        hist.observe(value)
    record = hist.to_record()
    assert record["count"] == 4
    for fraction in (0.5, 0.9, 0.99, 1.0):
        assert percentile_from_record(record, fraction) == pytest.approx(
            hist.percentile(fraction)
        )
    assert percentile_from_record({"count": 0}, 0.5) == 0.0


def test_exponential_buckets_validation():
    assert exponential_buckets(1, 2, 3) == (1, 2, 4)
    with pytest.raises(ValueError):
        exponential_buckets(0, 2, 3)
    with pytest.raises(ValueError):
        exponential_buckets(1, 1, 3)
    with pytest.raises(ValueError):
        exponential_buckets(1, 2, 0)
    with pytest.raises(ValueError):
        exponential_buckets(-1, 2, 3)


def test_gauge_int_values_roundtrip_without_float_coercion():
    """An int-valued gauge exports as an int: 120, not 120.0 — so
    JSONL diffs of repeated runs stay byte-identical."""
    registry = MetricsRegistry()
    gauge = registry.gauge("entries")
    gauge.set(120)
    record = gauge.to_record()
    assert record["value"] == 120
    assert isinstance(record["value"], int)
    assert json.loads(json.dumps(record)) == record
    assert "120.0" not in json.dumps(record)
    gauge.add(5)
    assert isinstance(gauge.to_record()["value"], int)
    # Float-valued gauges still behave as before.
    gauge.set(2.5)
    assert isinstance(gauge.to_record()["value"], float)


def test_percentile_paths_agree_on_random_data():
    """Property-style check: the live histogram and its exported record
    estimate identical percentiles, across shapes and fractions."""
    import random

    for seed in range(10):
        rng = random.Random(seed)
        registry = MetricsRegistry()
        hist = registry.histogram(
            "h", buckets=exponential_buckets(1e-8, 10 ** 0.5, 12)
        )
        for _ in range(rng.randrange(1, 200)):
            hist.observe(10 ** rng.uniform(-9, 0))
        record = json.loads(json.dumps(hist.to_record()))
        for fraction in (0.0, 0.01, 0.25, 0.5, 0.9, 0.95, 0.99, 1.0):
            assert percentile_from_record(record, fraction) == pytest.approx(
                hist.percentile(fraction)
            ), (seed, fraction)


def test_histogram_overflow_bucket_percentiles():
    """Every rank above the last bound reports the exact observed max."""
    registry = MetricsRegistry()
    hist = registry.histogram("h", buckets=(1.0, 2.0))
    for value in (5.0, 7.0, 11.0):  # all overflow
        hist.observe(value)
    assert hist.percentile(0.5) == 11.0
    assert hist.percentile(1.0) == 11.0
    assert percentile_from_record(hist.to_record(), 0.5) == 11.0


def test_histogram_single_observation_min_equals_max():
    registry = MetricsRegistry()
    hist = registry.histogram("h", buckets=(1.0, 10.0))
    hist.observe(3.0)
    assert hist.min == hist.max == 3.0
    assert hist.mean == 3.0
    # The single rank lands in the 10.0 bucket; the estimate is clamped
    # to the observed maximum.
    assert hist.percentile(0.5) == 3.0
    assert hist.percentile(1.0) == 3.0


def test_registry_as_dict_expands_sum_and_min():
    registry = MetricsRegistry()
    hist = registry.histogram("lat", buckets=(1.0, 10.0))
    hist.observe(0.5)
    hist.observe(4.5)
    flat = registry.as_dict()
    assert flat["lat.sum"] == pytest.approx(5.0)
    assert flat["lat.min"] == 0.5
    assert flat["lat.max"] == 4.5
    assert flat["lat.count"] == 2


def test_active_vertex_buckets_cover_seed_datasets():
    """The engine's active-vertex histogram must not overflow on any
    stand-in dataset: super-step 1 observes every vertex at once."""
    from repro.telemetry import ACTIVE_VERTEX_BUCKETS
    from repro.workloads.datasets import DATASETS

    top = ACTIVE_VERTEX_BUCKETS[-1]
    for spec in DATASETS.values():
        if spec.medium:
            assert spec.load().num_vertices <= top, spec.name


# ----------------------------------------------------------------------
# Engine instrumentation
# ----------------------------------------------------------------------
def test_cluster_run_emits_span_and_superstep_events():
    g = random_digraph(40, 120, seed=3)
    sink = InMemorySink()
    with session([sink]):
        stats = Cluster(num_nodes=4, cost_model=_NO_LIMIT).run(g, _Flood())
    runs = sink.spans_named("pregel.run")
    assert len(runs) == 1
    span = runs[0]
    assert span.attrs["program"] == "_Flood"
    assert span.attrs["num_nodes"] == 4
    assert span.attrs["vertices"] == g.num_vertices
    assert span.simulated_seconds == pytest.approx(stats.simulated_seconds)
    events = [e for e in sink.events if e.name == "pregel.superstep"]
    assert len(events) == stats.supersteps  # no finalize charges
    assert [e.attrs["superstep"] for e in events] == list(
        range(1, stats.supersteps + 1)
    )
    assert sum(e.attrs["compute_units"] for e in events) == stats.compute_units
    assert (
        sum(e.attrs["remote_messages"] for e in events) == stats.remote_messages
    )
    metrics = telemetry.current_metrics()  # session over: outer registry
    assert "pregel.supersteps" not in metrics
    counters = {m["name"]: m for m in sink.metrics}
    assert counters["pregel.supersteps"]["value"] == stats.supersteps
    assert counters["pregel.remote_messages"]["value"] == stats.remote_messages
    assert counters["pregel.active_vertices"]["count"] == stats.supersteps


def test_cluster_run_span_marks_time_limit():
    g = random_digraph(60, 240, seed=5)
    tight = CostModel(time_limit_seconds=1e-9)
    sink = InMemorySink()
    with session([sink]):
        with pytest.raises(TimeLimitExceeded):
            Cluster(num_nodes=2, cost_model=tight).run(g, _Flood())
    assert sink.spans_named("pregel.run")[0].status == "TimeLimitExceeded"


def test_no_telemetry_no_records():
    g = random_digraph(40, 120, seed=3)
    stats = Cluster(num_nodes=4, cost_model=_NO_LIMIT).run(g, _Flood())
    assert stats.trace == []  # engine-side tracing still opt-in


# ----------------------------------------------------------------------
# Builder instrumentation
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def small_graph():
    return random_digraph(60, 180, seed=7)


def test_drl_basic_emits_phase_spans(small_graph):
    sink = InMemorySink()
    with session([sink]):
        result = drl_basic_index(
            small_graph, num_nodes=4, cost_model=_NO_LIMIT
        )
    names = [s.name for s in sink.spans]
    assert "drl-.filtering" in names
    assert "drl-.refinement" in names
    assert "drl-.collection" in names
    build = sink.spans_named("drl-.build")[0]
    assert build.simulated_seconds == pytest.approx(
        result.stats.simulated_seconds
    )
    filtering = sink.spans_named("drl-.filtering")[0]
    refinement = sink.spans_named("drl-.refinement")[0]
    assert filtering.simulated_seconds + refinement.simulated_seconds == (
        pytest.approx(result.stats.simulated_seconds)
    )
    assert build.attrs["entries"] == result.index.num_entries


def test_drl_emits_flood_span(small_graph):
    sink = InMemorySink()
    with session([sink]):
        result = drl_index(small_graph, num_nodes=4, cost_model=_NO_LIMIT)
    flood = sink.spans_named("drl.flood")[0]
    assert flood.simulated_seconds == pytest.approx(
        result.stats.simulated_seconds
    )
    assert sink.spans_named("drl.build")[0].attrs["entries"] == (
        result.index.num_entries
    )


def test_drl_batch_emits_one_span_per_batch(small_graph):
    order = degree_order(small_graph)
    from repro.core.batching import batch_sequence

    batches = batch_sequence(order, 2, 2.0)
    sink = InMemorySink()
    with session([sink]):
        result = drl_batch_index(
            small_graph, order, num_nodes=4, cost_model=_NO_LIMIT
        )
    batch_spans = sink.spans_named("drl_b.batch")
    assert len(batch_spans) == len(batches)
    assert [s.attrs["batch"] for s in batch_spans] == list(
        range(1, len(batches) + 1)
    )
    assert [s.attrs["sources"] for s in batch_spans] == [
        len(b) for b in batches
    ]
    total = sum(s.simulated_seconds for s in batch_spans)
    assert total == pytest.approx(result.stats.simulated_seconds)
    # Label-entry growth gauge lands at the final index size.
    gauges = {m["name"]: m for m in sink.metrics}
    assert gauges["drl_b.label_entries"]["value"] == result.index.num_entries


# ----------------------------------------------------------------------
# Query service instrumentation
# ----------------------------------------------------------------------
def test_query_service_feeds_latency_histogram(small_graph):
    index = drl_index(small_graph, num_nodes=2, cost_model=_NO_LIMIT).index
    registry = MetricsRegistry()
    service = QueryService(IndexBackend(index), metrics=registry)
    pairs = [(0, 1), (1, 2), (2, 3), (3, 4)]
    report = service.evaluate(pairs)
    hist = registry.histogram("query.latency_seconds")
    assert hist.count == len(pairs)
    assert hist.total == pytest.approx(report.total_seconds)
    assert registry.counter("query.count").value == len(pairs)
    assert registry.counter("query.positives").value == report.positives
    service.query(0, 1)
    assert registry.counter("query.count").value == len(pairs) + 1


def test_query_service_uses_session_registry(small_graph):
    index = drl_index(small_graph, num_nodes=2, cost_model=_NO_LIMIT).index
    sink = InMemorySink()
    with session([sink]):
        service = QueryService(IndexBackend(index))
        service.evaluate([(0, 1), (1, 2)])
    span = sink.spans_named("query.evaluate")[0]
    assert span.attrs["count"] == 2
    metrics = {m["name"]: m for m in sink.metrics}
    assert metrics["query.latency_seconds"]["count"] == 2


def test_query_service_untracked_without_session(small_graph):
    index = drl_index(small_graph, num_nodes=2, cost_model=_NO_LIMIT).index
    service = QueryService(IndexBackend(index))
    report = service.evaluate([(0, 1)])
    assert report.count == 1
    assert len(telemetry.current_metrics()) == 0


# ----------------------------------------------------------------------
# Exemplars
# ----------------------------------------------------------------------
def test_exemplars_land_in_the_right_buckets():
    hist = telemetry.Histogram("lat", buckets=(1.0, 10.0), exemplar_slots=4)
    hist.observe(0.5, exemplar="t-low")
    hist.observe(5.0, exemplar="t-mid")
    hist.observe(50.0, exemplar="t-high")
    assert hist.exemplars(0) == [("t-low", 0.5)]
    assert hist.exemplars(1) == [("t-mid", 5.0)]
    assert hist.exemplars(2) == [("t-high", 50.0)]  # overflow bucket


def test_exemplar_reservoir_is_bounded_and_deterministic():
    def fill(seed):
        hist = telemetry.Histogram(
            "lat", buckets=(100.0,), exemplar_slots=3, exemplar_seed=seed
        )
        for i in range(500):
            hist.observe(float(i % 100), exemplar=f"t-{i:03d}")
        return hist.exemplars(0)

    first, second = fill(0), fill(0)
    assert len(first) == 3  # bounded at exemplar_slots
    assert first == second  # same seed, same sequence -> same sample
    assert fill(1) != first  # a different seed samples differently
    counts_only = telemetry.Histogram("lat", buckets=(100.0,))
    for i in range(500):
        counts_only.observe(float(i % 100), exemplar=f"t-{i:03d}")
    assert counts_only.count == 500  # sampling never affects the counts


def test_observe_without_exemplar_keeps_record_stable():
    hist = telemetry.Histogram("lat", buckets=(1.0,))
    hist.observe(0.5)
    record = hist.to_record()
    assert "exemplars" not in record
    with_exemplar = telemetry.Histogram("lat", buckets=(1.0,))
    with_exemplar.observe(0.5, exemplar="t-0")
    record = with_exemplar.to_record()
    assert record["exemplars"] == {"0": [{"exemplar": "t-0", "value": 0.5}]}
    json.dumps(record)  # JSONL-exportable


def test_exemplar_slots_validation():
    with pytest.raises(ValueError):
        telemetry.Histogram("lat", exemplar_slots=-1)
    zero = telemetry.Histogram("lat", exemplar_slots=0)
    zero.observe(0.5, exemplar="t-0")
    assert zero.exemplars(0) == []


def test_serve_latency_histogram_carries_trace_exemplars():
    from repro.graph.generators import social_graph
    from repro.core.build import build_index
    from repro.serve import QueryServer
    from repro.query.service import IndexBackend as _IB

    graph = social_graph(60, seed=3)
    index = build_index(graph, cost_model=_NO_LIMIT).index
    sink = InMemorySink()
    with session([sink]):
        server = QueryServer(_IB(index, _NO_LIMIT), cost_model=_NO_LIMIT)
        server.run_open([(0, 1)] * 20, [0.0] * 20)
    record = next(
        m for m in sink.metrics if m["name"] == "serve.latency_seconds"
    )
    exemplars = record["exemplars"]
    assert exemplars
    ids = {
        entry["exemplar"]
        for reservoir in exemplars.values()
        for entry in reservoir
    }
    event_ids = {
        r["attrs"]["trace_id"]
        for r in sink.records
        if r.get("kind") == "event" and r.get("name") == "serve.request"
    }
    assert ids <= event_ids  # every exemplar is a real request trace


# ----------------------------------------------------------------------
# Overhead guard: telemetry off => no per-request tracing work
# ----------------------------------------------------------------------
def _overhead_workload():
    from repro.graph.generators import social_graph
    from repro.core.build import build_index

    graph = social_graph(120, seed=5)
    index = build_index(graph, cost_model=_NO_LIMIT).index
    pairs = [(i % 120, (i * 7) % 120) for i in range(4000)]
    arrivals = [i * 1e-7 for i in range(4000)]
    return IndexBackend(index, _NO_LIMIT), pairs, arrivals


def test_disabled_telemetry_allocates_no_request_traces(monkeypatch):
    from repro.observe import tracing
    from repro.serve import QueryServer, pipeline as pipeline_module

    created = []
    original = tracing.RequestTrace

    class Counting(original):
        def __init__(self, *args, **kwargs):
            created.append(1)
            super().__init__(*args, **kwargs)

    monkeypatch.setattr(pipeline_module, "RequestTrace", Counting)
    backend, pairs, arrivals = _overhead_workload()
    assert current_tracer() is NULL_TRACER  # telemetry off
    report = QueryServer(backend, cost_model=_NO_LIMIT).run_open(pairs, arrivals)
    assert report.served + report.shed == len(pairs)
    assert created == []  # the hot path allocated zero trace objects


def test_disabled_telemetry_wall_time_overhead_under_5_percent(monkeypatch):
    import time
    from contextlib import nullcontext
    from repro.serve import QueryServer, pipeline as pipeline_module

    backend, pairs, arrivals = _overhead_workload()

    def run_once():
        server = QueryServer(backend, cost_model=_NO_LIMIT)
        start = time.perf_counter()
        server.run_open(pairs, arrivals)
        return time.perf_counter() - start

    def best_of(n):
        return min(run_once() for _ in range(n))

    class _Bare:
        simulated_seconds = 0.0

        def set(self, **attrs):
            return self

        def add_simulated(self, seconds):
            pass

    # The instrumented-but-disabled pipeline, as shipped.
    instrumented = best_of(5)
    # The same pipeline with the telemetry hooks stripped out entirely:
    # what an uninstrumented build would run.
    monkeypatch.setattr(pipeline_module, "enabled", lambda: False)
    monkeypatch.setattr(
        pipeline_module,
        "trace_span",
        lambda name, **attrs: nullcontext(_Bare()),
    )
    stripped = best_of(5)
    # Generous bound with re-measurement: timing on shared CI boxes is
    # noisy, and the ISSUE's contract is <5% added wall time.
    for _ in range(3):
        if instrumented <= stripped * 1.05:
            break
        instrumented = min(instrumented, best_of(5))
    assert instrumented <= stripped * 1.05, (
        f"disabled-telemetry overhead too high: "
        f"{instrumented:.4f}s vs {stripped:.4f}s uninstrumented"
    )
