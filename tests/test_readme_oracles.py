"""Cross-check: README's fuzz-oracle prose vs ``repro.fuzz.oracles``.

The README's "Fuzzing & oracles" section enumerates the oracle matrix
in prose.  This test keeps that prose honest: the stated count must
equal ``len(ORACLES)``, every oracle key must be described by a README
phrase, and every oracle function must carry a docstring (the
documentation of record for what each oracle asserts).
"""

from pathlib import Path

import pytest

from repro.fuzz.oracles import ORACLES

README = Path(__file__).resolve().parent.parent / "README.md"

#: oracle key -> the README phrase that describes it.
_README_PHRASES = {
    "methods-agree": "pairwise index equality across all\nbuild methods",
    "cover": "cover/soundness/canonical validation",
    "soundness": "cover/soundness/canonical validation",
    "canonical": "cover/soundness/canonical validation",
    "query-oracle": "query equivalence\nvs online BFS and the exact "
                    "transitive closure",
    "condensed": "SCC-condensed\nequivalence",
    "fault-equivalence": "faulty-vs-clean build equality",
    "dynamic-vs-rebuild": "incremental-update-vs-rebuild equality",
    "engine-mismatch": "multiprocessing-vs-simulator engine equality",
}

_COUNT_WORDS = {
    5: "five", 6: "six", 7: "seven", 8: "eight", 9: "nine", 10: "ten",
}


def _fuzz_section() -> str:
    text = README.read_text(encoding="utf-8")
    start = text.index("## Fuzzing & oracles")
    end = text.index("\n## ", start + 1)
    return text[start:end]


def test_phrase_mapping_covers_the_oracle_registry_exactly():
    assert set(_README_PHRASES) == set(ORACLES), (
        "oracle registry changed: update the README's 'Fuzzing & "
        "oracles' section and this test's phrase map together"
    )


def test_readme_mentions_every_oracle():
    section = _fuzz_section()
    for key, phrase in _README_PHRASES.items():
        assert phrase in section, (
            f"README no longer describes oracle {key!r} "
            f"(expected the phrase {phrase!r})"
        )


def test_readme_oracle_count_matches_registry():
    section = _fuzz_section()
    count_word = _COUNT_WORDS[len(ORACLES)]
    assert f"{count_word} oracles" in section, (
        f"README should say '{count_word} oracles' for the "
        f"{len(ORACLES)} entries in ORACLES"
    )


def test_every_oracle_documents_itself():
    for key, func in ORACLES.items():
        assert func.__doc__ and func.__doc__.strip(), (
            f"oracle {key!r} ({func.__name__}) has no docstring"
        )
