"""Cross-cutting property tests: the library's central invariants.

1. Every construction method yields the exact TOL index.
2. Every index satisfies the cover constraint (Definition 3), label
   soundness, and Theorem 1's canonical characterisation — checked
   through ``repro.core.validate``, the same checkers the fuzz
   harness's oracles use.
3. Reachability axioms hold through the index: reflexivity and
   transitivity.
4. Indexes survive serialization.

Graphs come from the fuzz harness's family generators (DAG, cyclic,
SCC-heavy, power-law, lattice) instead of only uniform random
digraphs: hub-dominated and hub-free topologies exercise the pruning
logic in opposite regimes.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.transitive_closure import TransitiveClosure
from repro.core.build import METHOD_NAMES, build_index
from repro.core.labels import ReachabilityIndex
from repro.core.tol import tol_index_reference
from repro.core.validate import check_canonical, check_cover, check_soundness
from repro.graph.order import degree_order
from repro.pregel.cost_model import CostModel
from tests.conftest import dags, digraphs, family_graphs

_NO_LIMIT = CostModel(time_limit_seconds=None)


@settings(max_examples=25, deadline=None)
@given(family_graphs(max_vertices=16))
def test_property_every_method_identical(g):
    order = degree_order(g)
    reference = tol_index_reference(g, order)
    for method in METHOD_NAMES:
        built = build_index(
            g, method=method, order=order, num_nodes=3, cost_model=_NO_LIMIT
        ).index
        assert built == reference, method


@settings(max_examples=40, deadline=None)
@given(family_graphs())
def test_property_cover_constraint_all_pairs(g):
    index = build_index(g, method="drl-b", cost_model=_NO_LIMIT).index
    report = check_cover(index, g)
    assert report.ok, report.violations
    assert report.checked == g.num_vertices**2


@settings(max_examples=30, deadline=None)
@given(dags())
def test_property_cover_constraint_on_dags(g):
    index = build_index(g, method="drl", cost_model=_NO_LIMIT).index
    assert check_cover(index, g).ok


@settings(max_examples=30, deadline=None)
@given(family_graphs())
def test_property_soundness_and_canonical(g):
    """Soundness plus Theorem 1: the built index is exactly TOL's —
    no missing entries, no redundant ones — under its build order."""
    order = degree_order(g)
    index = build_index(
        g, method="drl-b", order=order, cost_model=_NO_LIMIT
    ).index
    soundness = check_soundness(index, g)
    assert soundness.ok, soundness.violations
    canonical = check_canonical(index, g, order)
    assert canonical.ok, canonical.violations


@settings(max_examples=30, deadline=None)
@given(digraphs())
def test_property_canonical_on_uniform_digraphs(g):
    """The canonical check also holds on unstructured random graphs."""
    order = degree_order(g)
    index = build_index(
        g, method="drl", order=order, num_nodes=2, cost_model=_NO_LIMIT
    ).index
    assert check_canonical(index, g, order).ok


@settings(max_examples=30, deadline=None)
@given(family_graphs())
def test_property_reflexivity_and_transitivity(g):
    index = build_index(g, method="drl-b", cost_model=_NO_LIMIT).index
    n = g.num_vertices
    for v in range(n):
        assert index.query(v, v)
    # Transitivity on a sample of triples.
    for a in range(min(n, 5)):
        for b in range(min(n, 5)):
            if not index.query(a, b):
                continue
            for c in range(n):
                if index.query(b, c):
                    assert index.query(a, c), (a, b, c)


@settings(max_examples=20, deadline=None)
@given(family_graphs())
def test_property_serialization_round_trip(tmp_path_factory, g):
    index = build_index(g, method="drl-b", cost_model=_NO_LIMIT).index
    path = tmp_path_factory.mktemp("idx") / "index.bin"
    index.save(path)
    reloaded = ReachabilityIndex.load(path)
    assert reloaded == index


@settings(max_examples=25, deadline=None)
@given(family_graphs(), st.integers(min_value=1, max_value=6))
def test_property_label_minimality_witness(g, _seed):
    """Every label entry is *useful*: u ∈ L_in(w) implies u reaches w
    and (from Theorem 1) u is the top vertex of some real walk."""
    oracle = TransitiveClosure(g)
    index = build_index(g, method="drl", cost_model=_NO_LIMIT).index
    for w in range(g.num_vertices):
        for u in index.in_labels(w):
            assert oracle.query(u, w)
        for u in index.out_labels(w):
            assert oracle.query(w, u)
