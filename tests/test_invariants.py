"""Cross-cutting property tests: the library's central invariants.

1. Every construction method yields the exact TOL index.
2. Every index satisfies the cover constraint (Definition 3).
3. Reachability axioms hold through the index: reflexivity and
   transitivity.
4. Indexes survive serialization.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.transitive_closure import TransitiveClosure
from repro.core.build import METHOD_NAMES, build_index
from repro.core.labels import ReachabilityIndex
from repro.core.tol import tol_index_reference
from repro.graph.order import degree_order
from repro.pregel.cost_model import CostModel
from tests.conftest import dags, digraphs

_NO_LIMIT = CostModel(time_limit_seconds=None)


@settings(max_examples=25, deadline=None)
@given(digraphs(max_vertices=16))
def test_property_every_method_identical(g):
    order = degree_order(g)
    reference = tol_index_reference(g, order)
    for method in METHOD_NAMES:
        built = build_index(
            g, method=method, order=order, num_nodes=3, cost_model=_NO_LIMIT
        ).index
        assert built == reference, method


@settings(max_examples=40, deadline=None)
@given(digraphs())
def test_property_cover_constraint_all_pairs(g):
    oracle = TransitiveClosure(g)
    index = build_index(g, method="drl-b", cost_model=_NO_LIMIT).index
    for s in range(g.num_vertices):
        for t in range(g.num_vertices):
            assert index.query(s, t) == oracle.query(s, t), (s, t)


@settings(max_examples=30, deadline=None)
@given(dags())
def test_property_cover_constraint_on_dags(g):
    oracle = TransitiveClosure(g)
    index = build_index(g, method="drl", cost_model=_NO_LIMIT).index
    for s in range(g.num_vertices):
        for t in range(g.num_vertices):
            assert index.query(s, t) == oracle.query(s, t)


@settings(max_examples=30, deadline=None)
@given(digraphs())
def test_property_reflexivity_and_transitivity(g):
    index = build_index(g, method="drl-b", cost_model=_NO_LIMIT).index
    n = g.num_vertices
    for v in range(n):
        assert index.query(v, v)
    # Transitivity on a sample of triples.
    for a in range(min(n, 5)):
        for b in range(min(n, 5)):
            if not index.query(a, b):
                continue
            for c in range(n):
                if index.query(b, c):
                    assert index.query(a, c), (a, b, c)


@settings(max_examples=20, deadline=None)
@given(digraphs())
def test_property_serialization_round_trip(tmp_path_factory, g):
    index = build_index(g, method="drl-b", cost_model=_NO_LIMIT).index
    path = tmp_path_factory.mktemp("idx") / "index.bin"
    index.save(path)
    reloaded = ReachabilityIndex.load(path)
    assert reloaded == index


@settings(max_examples=25, deadline=None)
@given(digraphs(), st.integers(min_value=1, max_value=6))
def test_property_label_minimality_witness(g, _seed):
    """Every label entry is *useful*: u ∈ L_in(w) implies u reaches w
    and (from Theorem 1) u is the top vertex of some real walk."""
    oracle = TransitiveClosure(g)
    index = build_index(g, method="drl", cost_model=_NO_LIMIT).index
    for w in range(g.num_vertices):
        for u in index.in_labels(w):
            assert oracle.query(u, w)
        for u in index.out_labels(w):
            assert oracle.query(w, u)
