"""Micro-benchmarks for the differential fuzzing harness.

Real wall-clock throughput of the fuzz pipeline: case generation, the
full oracle matrix on one case, and shrinking an injected failure.
These bound how many cases a fixed `--time-budget` campaign can afford,
so a regression here directly shrinks nightly coverage.
"""

from __future__ import annotations

import pytest

from repro.fuzz.cases import generate_cases
from repro.fuzz.oracles import ORACLES, run_case
from repro.fuzz.shrink import shrink_case


@pytest.fixture(scope="module")
def cases():
    return generate_cases(seed=42, count=50)


def test_bench_case_generation(benchmark):
    result = benchmark(generate_cases, seed=7, count=100)
    assert len(result) == 100


def test_bench_oracle_matrix_single_case(benchmark, cases):
    # A mid-stream case: non-trivial graph, typical config.
    result = benchmark(run_case, cases[20])
    assert result.ok


def test_bench_oracle_matrix_batch(benchmark, cases):
    def campaign():
        return [run_case(c) for c in cases[:25]]

    results = benchmark(campaign)
    assert all(r.ok for r in results)


def test_bench_shrink_injected_failure(benchmark, cases):
    # A stub oracle with a clean vertex threshold exercises the ddmin
    # loop without depending on a real bug.
    def stub(ctx):
        n = ctx.graph.num_vertices
        return [f"{n} vertices"] if n >= 5 else []

    oracles = dict(ORACLES)
    oracles["cover"] = stub
    case = next(c for c in cases if c.num_vertices >= 10)

    reduction = benchmark(shrink_case, case, oracles=oracles)
    assert reduction.case.num_vertices == 5
