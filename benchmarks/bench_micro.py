"""Micro-benchmarks: wall-clock throughput of the core primitives.

Unlike the table/figure benchmarks (which report deterministic
*simulated* seconds), these measure real Python performance of the
hottest code paths, using pytest-benchmark's statistics properly.
"""

from __future__ import annotations

import pytest

from repro.baselines.bfl import build_bfl
from repro.core.labels import ReachabilityIndex
from repro.core.tol import tol_index
from repro.graph.generators import social_graph, web_graph
from repro.graph.order import degree_order
from repro.graph.traversal import trimmed_bfs
from repro.workloads.queries import random_pairs


@pytest.fixture(scope="module")
def graph():
    return web_graph(2000, seed=3)


@pytest.fixture(scope="module")
def order(graph):
    return degree_order(graph)


@pytest.fixture(scope="module")
def index(graph, order) -> ReachabilityIndex:
    return tol_index(graph, order)


def test_bench_degree_order(benchmark, graph):
    benchmark(degree_order, graph)


def test_bench_trimmed_bfs(benchmark, graph, order):
    # Source 50 is a mid-order vertex with a non-trivial frontier.
    benchmark(trimmed_bfs, graph, 50, order)


def test_bench_tol_build(benchmark, order):
    small = social_graph(600, seed=9)
    small_order = degree_order(small)
    benchmark(tol_index, small, small_order)


def test_bench_index_queries(benchmark, graph, index):
    pairs = random_pairs(graph.num_vertices, 10_000, seed=1)

    def run():
        hits = 0
        for s, t in pairs:
            hits += index.query(s, t)
        return hits

    benchmark(run)


def test_bench_bfl_build(benchmark, graph):
    benchmark(build_bfl, graph)


def test_bench_bfl_queries(benchmark, graph):
    bfl = build_bfl(graph)
    pairs = random_pairs(graph.num_vertices, 2_000, seed=2)

    def run():
        hits = 0
        for s, t in pairs:
            hits += bfl.query(s, t)
        return hits

    benchmark(run)


def test_bench_index_serialization(benchmark, index, tmp_path):
    path = tmp_path / "index.bin"

    def run():
        index.save(path)
        return ReachabilityIndex.load(path)

    reloaded = benchmark(run)
    assert reloaded == index
