"""Ablation (ours): value of the in-flight Check prune (Alg. 3 l. 14).

DRL stays correct without the opportunistic Check (the final cleanup
is exact either way), but the flood then expands through vertices the
inverted lists would have pruned.  This measures total compute units
with and without it.
"""

from __future__ import annotations

from conftest import FIG_DATASETS, save_and_print

from repro.bench import run_ablation_check_pruning


def _run():
    return run_ablation_check_pruning(dataset_names=FIG_DATASETS)


def test_ablation_check_pruning(benchmark):
    table = benchmark.pedantic(_run, rounds=1, iterations=1)
    save_and_print("ablation_check_pruning", table.render())

    wins = 0
    comparable = 0
    for row in table.rows:
        with_check = table.get(row, "with Check")
        without = table.get(row, "without Check")
        if with_check.ok and without.ok:
            comparable += 1
            if without.value >= with_check.value:
                wins += 1
    assert comparable, "no dataset finished both variants"
    # The prune must help (or at least not hurt) on most graphs.
    assert wins >= comparable / 2


if __name__ == "__main__":
    print(_run().render())
