"""Fig. 7 (Exp 6): index time on test graphs containing 20%..100% of
each medium graph's edges.

Expected shape (paper): index time grows smoothly (not explosively)
with graph size for all three algorithms.
"""

from __future__ import annotations

from conftest import FIG_DATASETS, save_and_print

from repro.bench import run_fig7_scalability

FRACTIONS = (0.2, 0.4, 0.6, 0.8, 1.0)


def _run():
    return run_fig7_scalability(dataset_names=FIG_DATASETS, fractions=FRACTIONS)


def test_fig7_scalability(benchmark):
    tables = benchmark.pedantic(_run, rounds=1, iterations=1)
    rendered = "\n\n".join(t.render() for t in tables.values())
    save_and_print("fig7_scalability", rendered)

    drlb = tables["drl-b"]
    for row in drlb.rows:
        series = [drlb.get(row, c) for c in drlb.columns]
        assert all(cell.ok for cell in series), f"DRL_b failed on {row}"
        # Smooth growth: the full graph costs more than the smallest
        # slice but by a bounded factor (the paper reports 4.8x on TW).
        assert series[-1].value >= series[0].value * 0.8
        assert series[-1].value <= series[0].value * 60


if __name__ == "__main__":
    for table in _run().values():
        print(table.render())
        print()
