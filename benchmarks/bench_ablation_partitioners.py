"""Ablation (ours): vertex partitioner vs communication time.

The paper hash-partitions vertices by id.  This measures DRL_b's
communication seconds under hash, modulo, range, and block
partitioning; range partitioning tends to colocate the id-correlated
neighborhoods that synthetic generators produce.
"""

from __future__ import annotations

from conftest import FIG_DATASETS, save_and_print

from repro.bench import run_ablation_partitioners


def _run():
    return run_ablation_partitioners(dataset_names=FIG_DATASETS)


def test_ablation_partitioners(benchmark):
    table = benchmark.pedantic(_run, rounds=1, iterations=1)
    save_and_print("ablation_partitioners", table.render())

    for row in table.rows:
        cells = [table.get(row, c) for c in table.columns]
        assert all(cell.ok for cell in cells), f"a partitioner failed on {row}"
        # Communication exists under every partitioning (nonzero).
        assert all(cell.value > 0 for cell in cells)


if __name__ == "__main__":
    print(_run().render())
