"""Extension benchmark (ours): quantify the paper's Section II-C choice.

The paper indexes cyclic graphs *directly*, arguing that obtaining and
merging SCCs in a distributed environment is non-trivial.  Having
implemented distributed FW-BW-Trim condensation, we can measure the
alternative: condense distributedly, then index the DAG with DRL_b.
The table reports both pipelines' simulated cost per medium graph.
"""

from __future__ import annotations

from conftest import FIG_DATASETS, save_and_print

from repro.bench.results import ExperimentTable
from repro.core.drl_batch import drl_batch_index
from repro.distributed import distributed_condensation
from repro.graph.order import degree_order
from repro.pregel.cost_model import paper_scale_model
from repro.workloads.datasets import MEDIUM_DATASETS, get_dataset


def _run() -> ExperimentTable:
    names = MEDIUM_DATASETS if FIG_DATASETS is None else FIG_DATASETS
    cost_model = paper_scale_model(time_limit_seconds=None)
    columns = ["direct DRL_b", "dist. SCC", "DAG DRL_b", "condensed total"]
    table = ExperimentTable(
        "Section II-C — direct indexing vs distributed condensation "
        "(simulated s)",
        columns,
    )
    for name in names:
        graph = get_dataset(name).load()
        direct = drl_batch_index(
            graph, degree_order(graph), num_nodes=32, cost_model=cost_model
        )
        cond, scc_stats = distributed_condensation(
            graph, num_nodes=32, cost_model=cost_model
        )
        dag_result = drl_batch_index(
            cond.dag, degree_order(cond.dag), num_nodes=32, cost_model=cost_model
        )
        table.set(name, "direct DRL_b", direct.stats.simulated_seconds)
        table.set(name, "dist. SCC", scc_stats.simulated_seconds)
        table.set(name, "DAG DRL_b", dag_result.stats.simulated_seconds)
        table.set(
            name,
            "condensed total",
            scc_stats.simulated_seconds + dag_result.stats.simulated_seconds,
        )
    return table


def test_condense_vs_direct(benchmark):
    table = benchmark.pedantic(_run, rounds=1, iterations=1)
    save_and_print("condense_vs_direct", table.render())
    # The paper's premise: the condensation step is a substantial cost
    # on top of indexing — on most graphs it alone rivals or exceeds
    # the whole direct pipeline.
    dominated = sum(
        table.get(row, "dist. SCC").value
        >= 0.5 * table.get(row, "direct DRL_b").value
        for row in table.rows
    )
    assert dominated >= len(table.rows) / 2


if __name__ == "__main__":
    print(_run().render())
