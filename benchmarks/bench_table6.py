"""Table VI (Exps 1-3): BFL^C / BFL^D / TOL / DRL_b / DRL_b^M on all
18 datasets — index time, index size, and query time.

Expected shape (paper): DRL_b beats TOL by up to ~9x and indexes every
graph; TOL / BFL^C / DRL_b^M are unavailable ("-") on graphs that do
not fit one machine; BFL^D indexes everything but is an order of
magnitude slower than DRL_b and far slower at query time; TOL, DRL_b
and DRL_b^M share one index (identical size and query time).
"""

from __future__ import annotations

from conftest import save_and_print

from repro.bench import run_table6


def _run():
    return run_table6(num_queries=300)


def test_table6(benchmark):
    time_table, size_table, query_table = benchmark.pedantic(
        _run, rounds=1, iterations=1
    )
    rendered = "\n\n".join(
        t.render() for t in (time_table, size_table, query_table)
    )
    save_and_print("table6", rendered)

    # Shape assertions from the paper's findings.
    for row in time_table.rows:
        tol = time_table.get(row, "TOL")
        drlb = time_table.get(row, "DRL_b")
        assert drlb.ok, f"DRL_b must index every graph ({row})"
        if tol.ok:
            assert drlb.value <= tol.value, f"DRL_b slower than TOL on {row}"
        bfd = time_table.get(row, "BFL^D")
        assert bfd.ok and bfd.value > drlb.value
        # Same index => same size and query time as TOL.
        if size_table.get(row, "TOL").ok:
            assert (
                size_table.get(row, "TOL").value
                == size_table.get(row, "DRL_b").value
            )


if __name__ == "__main__":
    for table in _run():
        print(table.render())
        print()
