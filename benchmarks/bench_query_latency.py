"""Extension benchmark (ours): query latency percentiles per backend.

Mean query times (Table VI) hide the tail: index-assisted methods are
bimodal — label-only answers are fast, fallback traversals are slow.
This measures p50/p99 simulated latency for the 2-hop index (collected
and sharded), BFL, GRAIL, and online search on the medium graphs.
"""

from __future__ import annotations

from conftest import FIG_DATASETS, save_and_print

from repro.baselines.bfl import build_bfl
from repro.baselines.grail import build_grail
from repro.bench.results import ExperimentTable
from repro.core.build import build_index
from repro.pregel.cost_model import paper_scale_model
from repro.query import (
    BflBackend,
    DistributedIndexBackend,
    GrailBackend,
    IndexBackend,
    OnlineBackend,
    QueryService,
)
from repro.workloads.datasets import MEDIUM_DATASETS, get_dataset
from repro.workloads.queries import random_pairs


def _run():
    names = MEDIUM_DATASETS if FIG_DATASETS is None else FIG_DATASETS
    cost_model = paper_scale_model(time_limit_seconds=None)
    backends = ("index", "sharded index", "BFL", "GRAIL", "online")
    p50 = ExperimentTable(
        "Query latency p50 (simulated s)", list(backends), scientific=True
    )
    p99 = ExperimentTable(
        "Query latency p99 (simulated s)", list(backends), scientific=True
    )
    for name in names:
        graph = get_dataset(name).load()
        pairs = random_pairs(graph.num_vertices, 600, seed=17)
        index = build_index(graph, cost_model=cost_model).index
        services = {
            "index": QueryService(IndexBackend(index, cost_model)),
            "sharded index": QueryService(
                DistributedIndexBackend(index, num_nodes=32, cost_model=cost_model)
            ),
            "BFL": QueryService(BflBackend(build_bfl(graph), cost_model)),
            "GRAIL": QueryService(GrailBackend(build_grail(graph), cost_model)),
            "online": QueryService(OnlineBackend(graph, cost_model)),
        }
        for label, service in services.items():
            report = service.evaluate(pairs)
            p50.set(name, label, report.p50_seconds)
            p99.set(name, label, report.p99_seconds)
    return p50, p99


def test_query_latency(benchmark):
    p50, p99 = benchmark.pedantic(_run, rounds=1, iterations=1)
    save_and_print("query_latency", p50.render() + "\n\n" + p99.render())
    for row in p50.rows:
        # The collected index dominates at the median and the tail.
        assert p50.get(row, "index").value <= p50.get(row, "online").value
        assert p99.get(row, "index").value <= p99.get(row, "online").value
        # Sharded labels cost more than collected ones.
        assert (
            p50.get(row, "sharded index").value
            >= p50.get(row, "index").value
        )


if __name__ == "__main__":
    for table in _run():
        print(table.render())
        print()
