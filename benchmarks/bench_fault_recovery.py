"""Robustness: DRL_b builds under an injected crash + straggler + lossy
network, versus the same builds fault-free.

Expected shape: every faulty build completes after recovery with an
index identical to the clean one (the ``identical`` column is all 1s);
the faulty build is strictly slower, and the slowdown decomposes into
nonzero ``recovery s`` (discarded work + failover + checkpoint restore)
and ``checkpoint s`` (periodic snapshot writes).
"""

from __future__ import annotations

from conftest import FIG_DATASETS, save_and_print

from repro.bench import run_fault_recovery


def _run():
    return run_fault_recovery(dataset_names=FIG_DATASETS)


def test_fault_recovery(benchmark):
    table = benchmark.pedantic(_run, rounds=1, iterations=1)
    save_and_print("fault_recovery", table.render())

    assert table.rows, "no datasets ran"
    for row in table.rows:
        identical = table.get(row, "identical")
        assert identical.ok and identical.value == 1.0, (
            f"faulty build diverged from clean index on {row}"
        )
        clean = table.get(row, "clean s")
        faulty = table.get(row, "faulty s")
        recovery = table.get(row, "recovery s")
        assert clean.ok and faulty.ok and recovery.ok
        assert faulty.value > clean.value, f"faults were free on {row}"
        assert recovery.value > 0.0, f"no recovery cost recorded on {row}"
