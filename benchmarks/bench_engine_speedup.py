"""Real wall-clock speedup of the multiprocessing engine vs the
simulator's *modelled* speedup on the same build.

The simulator charges a cost model and reports ``simulated_seconds``;
``core/multicore.py`` turns that into the paper's DRL_b^M speedup
curve.  The mp engine actually forks worker processes, so here we can
put the two side by side on the fig5 graph (WEBW stand-in): measured
wall-clock per worker count against the modelled multi-core speedup
for the same core count.  On a single-core container the measured
column degenerates (process overhead, no parallel hardware), so the
speedup assertion only arms on hosts with enough CPUs.
"""

from __future__ import annotations

import os
import time

from conftest import save_and_print

from repro.core.multicore import drl_multicore_index
from repro.workloads.datasets import get_dataset

#: Worker counts in the sweep (capped at the host's CPU count for the
#: measured column — oversubscribing a 1-core box measures noise).
WORKER_SWEEP = (1, 2, 4)


def _build(graph, cores: int, engine: str):
    """One DRL_b^M build; returns (wall_seconds, simulated_seconds)."""
    start = time.perf_counter()
    result = drl_multicore_index(
        graph, num_cores=cores, engine=engine,
        workers=cores if engine == "mp" else None,
    )
    return time.perf_counter() - start, result.stats.simulated_seconds


def _run():
    graph = get_dataset("WEBW").load()
    lines = [
        f"engine speedup sweep — WEBW stand-in "
        f"(n={graph.num_vertices} m={graph.num_edges}, "
        f"host cpus={os.cpu_count()})",
        "",
        f"{'workers':>7} {'sim wall':>9} {'mp wall':>9} "
        f"{'real x':>7} {'modelled x':>10}",
    ]
    rows = []
    sim_wall_1 = mp_wall_1 = modelled_1 = None
    for cores in WORKER_SWEEP:
        sim_wall, modelled = _build(graph, cores, "sim")
        mp_wall, mp_modelled = _build(graph, cores, "mp")
        assert mp_modelled == modelled, (
            f"mp engine drifted from the cost model at {cores} cores: "
            f"{mp_modelled} != {modelled}"
        )
        if cores == 1:
            sim_wall_1, mp_wall_1, modelled_1 = sim_wall, mp_wall, modelled
        real_x = mp_wall_1 / mp_wall
        modelled_x = modelled_1 / modelled
        rows.append((cores, sim_wall, mp_wall, real_x, modelled_x))
        lines.append(
            f"{cores:>7} {sim_wall:>8.2f}s {mp_wall:>8.2f}s "
            f"{real_x:>6.2f}x {modelled_x:>9.2f}x"
        )
    return "\n".join(lines), rows


def test_engine_speedup(benchmark):
    table, rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    save_and_print("engine_speedup", table)

    by_cores = {cores: row for cores, *row in rows}
    # The modelled curve must improve with cores regardless of host.
    assert by_cores[4][3] > by_cores[1][3], "modelled speedup is flat"
    # The measured curve only means something on real parallel hardware.
    cpus = os.cpu_count() or 1
    if cpus >= 4:
        real_x4 = by_cores[4][2]
        assert real_x4 >= 1.5, (
            f"mp engine speedup at 4 workers is {real_x4:.2f}x "
            f"on a {cpus}-cpu host (expected >= 1.5x)"
        )


if __name__ == "__main__":
    print(_run()[0])
