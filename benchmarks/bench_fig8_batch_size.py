"""Fig. 8 (Exp 7): effect of the initial batch size b on DRL_b's index
time (k fixed at 2).

Expected shape (paper): b has little effect — max/min index time ratio
stays small across b ∈ {1..128}, so the default b = 2 is sound.
"""

from __future__ import annotations

from conftest import FIG_DATASETS, save_and_print

from repro.bench import run_fig8_batch_size

B_VALUES = (1, 2, 4, 8, 16, 32, 64, 128)


def _run():
    return run_fig8_batch_size(dataset_names=FIG_DATASETS, b_values=B_VALUES)


def test_fig8_batch_size(benchmark):
    table = benchmark.pedantic(_run, rounds=1, iterations=1)
    save_and_print("fig8_batch_size", table.render())

    for row in table.rows:
        values = [
            table.get(row, c).value for c in table.columns if table.get(row, c).ok
        ]
        assert len(values) == len(table.columns), f"DRL_b failed on {row}"
        # The paper reports max/min <= 1.5 on billion-edge graphs; on
        # our ~10^3x smaller stand-ins a batch of 128 is a visible
        # fraction of the whole graph, so the ratio is larger (see
        # EXPERIMENTS.md).  The shape claim that survives scaling is
        # that b is a bounded, non-explosive knob.
        assert max(values) / min(values) < 8.0, f"b too influential on {row}"


if __name__ == "__main__":
    print(_run().render())
