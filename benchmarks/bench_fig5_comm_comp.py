"""Fig. 5 (Exp 4): computation vs communication time of DRL⁻ / DRL /
DRL_b on the six medium graphs.

Expected shape (paper): DRL is far faster than DRL⁻ (which may hit the
cut-off); DRL_b improves on DRL (~3.5x) and reduces communication.
"""

from __future__ import annotations

from conftest import FIG_DATASETS, save_and_print

from repro.bench import run_fig5_comm_comp


def _run():
    return run_fig5_comm_comp(dataset_names=FIG_DATASETS)


def test_fig5_comm_comp(benchmark):
    table = benchmark.pedantic(_run, rounds=1, iterations=1)
    save_and_print("fig5_comm_comp", table.render())

    for row in table.rows:
        drl = table.get(row, "DRL comp")
        drlb = table.get(row, "DRL_b comp")
        basic = table.get(row, "DRL- comp")
        assert drl.ok and drlb.ok, f"DRL/DRL_b must finish on {row}"
        if basic.ok:
            total_basic = basic.value + table.get(row, "DRL- comm").value
            total_drl = drl.value + table.get(row, "DRL comm").value
            assert total_basic >= total_drl, f"DRL- faster than DRL on {row}"


if __name__ == "__main__":
    print(_run().render())
