"""Shared helpers for the paper-reproduction benchmarks."""

from __future__ import annotations

import os
from pathlib import Path

RESULTS_DIR = Path(__file__).parent / "results"

#: Set REPRO_BENCH_FAST=1 to restrict figure benchmarks to two medium
#: datasets (quick smoke run instead of full fidelity).
FAST = bool(int(os.environ.get("REPRO_BENCH_FAST", "0")))
FIG_DATASETS = ("WEBW", "CITP") if FAST else None


def save_and_print(name: str, text: str) -> None:
    """Persist a rendered table under benchmarks/results/ and echo it.

    The write is atomic (temp file + rename), so an interrupted
    benchmark never leaves a truncated result file behind.
    """
    from repro.bench.results import atomic_write_text

    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    atomic_write_text(path, text + "\n")
    print()
    print(text)
    print(f"[saved to {path}]")
