"""Fig. 9 (Exp 8): effect of the increment factor k on DRL_b's index
time (b fixed at 2).

Expected shape (paper): k = 1 (constant-size batches, hence ~n/2
batches) is drastically slower — up to 812x; for k > 1 the index time
is flat, and 2 is a good default.
"""

from __future__ import annotations

from conftest import FIG_DATASETS, save_and_print

from repro.bench import run_fig9_factor_k

K_VALUES = (1, 1.5, 2, 2.5, 3, 3.5, 4)


def _run():
    return run_fig9_factor_k(dataset_names=FIG_DATASETS, k_values=K_VALUES)


def test_fig9_factor_k(benchmark):
    table = benchmark.pedantic(_run, rounds=1, iterations=1)
    save_and_print("fig9_factor_k", table.render())

    for row in table.rows:
        k1 = table.get(row, "k=1")
        others = [
            table.get(row, c)
            for c in table.columns
            if c != "k=1" and table.get(row, c).ok
        ]
        assert others, f"DRL_b failed for k>1 on {row}"
        fastest = min(cell.value for cell in others)
        slowest = max(cell.value for cell in others)
        # Flat for k > 1 (paper: ratio <= 1.4; we allow simulator slack).
        assert slowest / fastest < 3.0, f"k>1 not flat on {row}"
        # k = 1 is drastically slower (or hits the cut-off outright).
        if k1.ok:
            assert k1.value > 2.0 * fastest, f"k=1 not penalised on {row}"


if __name__ == "__main__":
    print(_run().render())
