"""Serving-layer benchmark: cached vs uncached throughput under a
Zipf-skewed open-loop workload (see docs/serving.md).

Expected shape: with the offered load saturating the pipeline, the
query cache converts the hot pairs into single-probe hits, so the
cached configuration clears more than 2x the uncached throughput and
serves strictly more of the offered stream.
"""

from __future__ import annotations

from conftest import FAST, save_and_print

from repro.graph.generators import social_graph
from repro.serve import caching_speedup, run_serve_bench

VERTICES = 5_000 if FAST else 50_000
REQUESTS = 10_000 if FAST else 40_000


def _run():
    graph = social_graph(VERTICES, seed=11)
    return run_serve_bench(
        graph, shards=8, requests=REQUESTS, rate=2_000_000.0, zipf=1.4
    )


def test_serve_cached_vs_uncached(benchmark):
    table, reports = benchmark.pedantic(_run, rounds=1, iterations=1)
    speedup = caching_speedup(reports)
    save_and_print(
        "serve_bench",
        table.render() + f"\n\ncaching speedup: {speedup:.2f}x throughput",
    )

    cached, uncached = reports["cached"], reports["uncached"]
    assert cached.cache_hits > 0 and uncached.cache_hits == 0
    # Conservation: every offered request is accounted for.
    for report in (cached, uncached):
        assert report.served + report.shed + report.deadline_dropped == report.offered
    # The headline shape: caching more than doubles saturated throughput.
    assert speedup is not None and speedup > 2.0, f"speedup only {speedup:.2f}x"
    assert cached.served > uncached.served


if __name__ == "__main__":
    table, reports = _run()
    print(table.render())
    print(f"caching speedup: {caching_speedup(reports):.2f}x throughput")
