"""Ablation (ours): Pregel message combining in DRL_b.

The paper's system sends one message per edge per BFS wavefront; a
per-node combiner (dedup of identical ``{ID, order}`` messages to the
same destination within a super-step) can only reduce network traffic.
This quantifies the saving — and verifies the index is unchanged.
"""

from __future__ import annotations

from conftest import FIG_DATASETS, save_and_print

from repro.bench.results import ExperimentTable
from repro.core.drl_batch import drl_batch_index
from repro.graph.order import degree_order
from repro.pregel.cost_model import paper_scale_model
from repro.workloads.datasets import MEDIUM_DATASETS, get_dataset


def _run() -> ExperimentTable:
    names = MEDIUM_DATASETS if FIG_DATASETS is None else FIG_DATASETS
    cost_model = paper_scale_model(time_limit_seconds=None)
    columns = ["messages", "messages+combiner", "saving %"]
    table = ExperimentTable(
        "Ablation — DRL_b message counts with/without combiner",
        columns,
        precision=1,
    )
    for name in names:
        graph = get_dataset(name).load()
        order = degree_order(graph)
        plain = drl_batch_index(graph, order, num_nodes=32, cost_model=cost_model)
        combined = drl_batch_index(
            graph, order, num_nodes=32, cost_model=cost_model,
            combine_messages=True,
        )
        assert combined.index == plain.index  # combiner never changes output
        a = plain.stats.total_messages
        b = combined.stats.total_messages
        table.set(name, "messages", float(a))
        table.set(name, "messages+combiner", float(b))
        table.set(name, "saving %", 100.0 * (a - b) / max(1, a))
    return table


def test_ablation_combiner(benchmark):
    table = benchmark.pedantic(_run, rounds=1, iterations=1)
    save_and_print("ablation_combiner", table.render())
    for row in table.rows:
        assert (
            table.get(row, "messages+combiner").value
            <= table.get(row, "messages").value
        )


if __name__ == "__main__":
    print(_run().render())
