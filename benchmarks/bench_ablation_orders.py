"""Ablation (ours): how the vertex-order strategy affects DRL_b.

The paper motivates the degree-product order as "cheap to calculate
and works well in practice" (Section II-B).  This benchmark measures
DRL_b's index time and, more importantly, index size under alternative
orders; a random order should inflate the index substantially.
"""

from __future__ import annotations

from conftest import FIG_DATASETS, save_and_print

from repro.bench import run_ablation_orders


def _run():
    return run_ablation_orders(dataset_names=FIG_DATASETS)


def test_ablation_orders(benchmark):
    time_table, size_table = benchmark.pedantic(_run, rounds=1, iterations=1)
    save_and_print(
        "ablation_orders", time_table.render() + "\n\n" + size_table.render()
    )

    inflations = []
    for row in size_table.rows:
        degree = size_table.get(row, "degree")
        rand = size_table.get(row, "random")
        if degree.ok and rand.ok:
            inflations.append(rand.value / degree.value)
    assert inflations, "no dataset produced comparable sizes"
    # The degree order never loses, and on reachability-dense graphs
    # (the citation datasets) it wins by a wide margin.
    assert sum(inflations) / len(inflations) > 1.0
    assert max(inflations) > 1.25


if __name__ == "__main__":
    for table in _run():
        print(table.render())
        print()
