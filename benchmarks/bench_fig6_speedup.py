"""Fig. 6 (Exp 5): speedup of DRL⁻ / DRL / DRL_b as the node count
grows from 1 to 32, on the six medium graphs.

Expected shape (paper): DRL_b's speedup increases with the node count
(max ≈ 18x at 32 nodes); DRL⁻ often cannot finish on one node within
the cut-off (marked INF).
"""

from __future__ import annotations

from conftest import FIG_DATASETS, save_and_print

from repro.bench import run_fig6_speedup

NODE_COUNTS = (1, 2, 4, 8, 16, 32)


def _run():
    return run_fig6_speedup(dataset_names=FIG_DATASETS, node_counts=NODE_COUNTS)


def test_fig6_speedup(benchmark):
    tables = benchmark.pedantic(_run, rounds=1, iterations=1)
    rendered = "\n\n".join(t.render() for t in tables.values())
    save_and_print("fig6_speedup", rendered)

    # As in the paper, a dataset whose 1-node run exceeds the cut-off
    # has no speedup series (its "failure is marked at the title").
    drlb = tables["drl-b"]
    complete = 0
    for row in drlb.rows:
        series = [drlb.get(row, str(x)) for x in NODE_COUNTS]
        if not all(cell.ok for cell in series):
            continue
        complete += 1
        assert abs(series[0].value - 1.0) < 1e-9
        # Speedup at 32 nodes must clearly exceed 1 and the 2-node one.
        assert series[-1].value > 1.5, f"no 32-node speedup on {row}"
        assert series[-1].value > series[1].value
    assert complete >= 4, "DRL_b should report a speedup on most graphs"


if __name__ == "__main__":
    for table in _run().values():
        print(table.render())
        print()
