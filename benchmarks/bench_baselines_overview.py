"""Extension benchmark (ours): the related-work landscape in one table.

Compares every query-answering approach in the library on the medium
graphs — index-only (TOL index via DRL_b, condensed variant),
index-assisted (BFL, GRAIL), and index-free (online BFS) — on
build cost, index size, and mean query cost, all in the same simulated
units.  This is the quantitative version of the paper's Related Work
section.
"""

from __future__ import annotations

from conftest import FIG_DATASETS, save_and_print

from repro.baselines.bfl import build_bfl
from repro.baselines.chain_tc import build_chain_tc
from repro.baselines.grail import build_grail
from repro.baselines.ip_label import build_ip
from repro.baselines.online import OnlineSearcher
from repro.bench.results import ExperimentTable
from repro.core.build import build_index
from repro.core.condensed import build_condensed_index
from repro.pregel.cost_model import paper_scale_model
from repro.pregel.serial import SerialMeter
from repro.workloads.datasets import MEDIUM_DATASETS, get_dataset
from repro.workloads.queries import random_pairs

APPROACHES = ("DRL_b", "condensed", "chain-TC", "BFL", "GRAIL", "IP", "online")


def _run():
    names = MEDIUM_DATASETS if FIG_DATASETS is None else FIG_DATASETS
    cost_model = paper_scale_model(time_limit_seconds=None)
    t_op = cost_model.t_op
    size_table = ExperimentTable(
        "Baselines — index size (KiB)", list(APPROACHES), precision=1
    )
    query_table = ExperimentTable(
        "Baselines — mean query cost (simulated s)",
        list(APPROACHES),
        scientific=True,
    )
    for name in names:
        graph = get_dataset(name).load()
        pairs = random_pairs(graph.num_vertices, 400, seed=11)

        result = build_index(graph, cost_model=cost_model)
        size_table.set(name, "DRL_b", result.index.size_bytes() / 1024)
        units = sum(
            len(result.index.out_labels(s)) + len(result.index.in_labels(t)) + 1
            for s, t in pairs
        )
        query_table.set(name, "DRL_b", units * t_op / len(pairs))

        condensed, _ = build_condensed_index(graph, cost_model=cost_model)
        size_table.set(name, "condensed", condensed.size_bytes() / 1024)
        dag_index = condensed.dag_index
        units = sum(
            len(dag_index.out_labels(condensed.component_of(s)))
            + len(dag_index.in_labels(condensed.component_of(t)))
            + 2
            for s, t in pairs
        )
        query_table.set(name, "condensed", units * t_op / len(pairs))

        chain = build_chain_tc(graph)
        size_table.set(name, "chain-TC", chain.size_bytes() / 1024)
        meter = SerialMeter(cost_model.with_time_limit(None))
        for s, t in pairs:
            chain.query(s, t, meter=meter)
        query_table.set(name, "chain-TC", meter.simulated_seconds / len(pairs))

        ip = build_ip(graph)
        size_table.set(name, "IP", ip.size_bytes() / 1024)
        meter = SerialMeter(cost_model.with_time_limit(None))
        for s, t in pairs:
            ip.query(s, t, meter=meter)
        query_table.set(name, "IP", meter.simulated_seconds / len(pairs))

        bfl = build_bfl(graph)
        size_table.set(name, "BFL", bfl.size_bytes() / 1024)
        meter = SerialMeter(cost_model.with_time_limit(None))
        for s, t in pairs:
            bfl.query(s, t, meter=meter)
        query_table.set(name, "BFL", meter.simulated_seconds / len(pairs))

        grail = build_grail(graph)
        size_table.set(name, "GRAIL", grail.size_bytes() / 1024)
        meter = SerialMeter(cost_model.with_time_limit(None))
        for s, t in pairs:
            grail.query(s, t, meter=meter)
        query_table.set(name, "GRAIL", meter.simulated_seconds / len(pairs))

        online = OnlineSearcher(graph, cost_model)
        size_table.set(name, "online", 0.0)
        total = sum(online.query_with_cost(s, t)[1] for s, t in pairs)
        query_table.set(name, "online", total / len(pairs))
    return size_table, query_table


def test_baselines_overview(benchmark):
    size_table, query_table = benchmark.pedantic(_run, rounds=1, iterations=1)
    save_and_print(
        "baselines_overview",
        size_table.render() + "\n\n" + query_table.render(),
    )
    for row in query_table.rows:
        drlb = query_table.get(row, "DRL_b").value
        online = query_table.get(row, "online").value
        # The index-only approach must dominate index-free search.
        assert drlb < online
        # Index-assisted methods sit in between or near the index side.
        assert query_table.get(row, "BFL").value < online
        assert query_table.get(row, "GRAIL").value < online


if __name__ == "__main__":
    for table in _run():
        print(table.render())
        print()
