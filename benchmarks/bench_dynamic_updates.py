"""Extension benchmark (ours): dynamic maintenance vs rebuild.

The paper leaves dynamic distributed graphs to future work; the
library ships exact centralized maintenance (``repro.core.dynamic``).
This measures mean wall-clock cost of an incremental edge insertion /
deletion against rebuilding the index from scratch.
"""

from __future__ import annotations

import random
import time

from conftest import FIG_DATASETS, save_and_print

from repro.bench.results import ExperimentTable
from repro.core.dynamic import DynamicReachabilityIndex
from repro.core.tol import tol_index
from repro.workloads.datasets import get_dataset

DATASETS = ("WEBW", "TW") if FIG_DATASETS is None else FIG_DATASETS
NUM_UPDATES = 60


def _run() -> ExperimentTable:
    columns = ["insert (ms)", "delete (ms)", "rebuild (ms)", "speedup"]
    table = ExperimentTable(
        "Dynamic maintenance — mean wall ms per operation", columns, precision=2
    )
    for name in DATASETS:
        graph = get_dataset(name).load()
        dynamic = DynamicReachabilityIndex(graph)
        rng = random.Random(5)
        n = graph.num_vertices

        start = time.perf_counter()
        tol_index(dynamic.current_graph(), dynamic.order)
        rebuild_ms = (time.perf_counter() - start) * 1e3

        inserted = []
        start = time.perf_counter()
        done = 0
        while done < NUM_UPDATES:
            u, v = rng.randrange(n), rng.randrange(n)
            if u == v:
                continue
            if dynamic.insert_edge(u, v):
                inserted.append((u, v))
                done += 1
        insert_ms = (time.perf_counter() - start) * 1e3 / NUM_UPDATES

        start = time.perf_counter()
        for u, v in inserted:
            dynamic.delete_edge(u, v)
        delete_ms = (time.perf_counter() - start) * 1e3 / NUM_UPDATES

        table.set(name, "insert (ms)", insert_ms)
        table.set(name, "delete (ms)", delete_ms)
        table.set(name, "rebuild (ms)", rebuild_ms)
        table.set(name, "speedup", rebuild_ms / max(insert_ms, 1e-9))
    return table


def test_dynamic_updates(benchmark):
    table = benchmark.pedantic(_run, rounds=1, iterations=1)
    save_and_print("dynamic_updates", table.render())
    for row in table.rows:
        # Incremental insertion must beat a full rebuild.
        assert table.get(row, "speedup").value > 1.5, row


if __name__ == "__main__":
    print(_run().render())
