#!/usr/bin/env python
"""Execute the code examples in the documentation.

Docs rot when nobody runs them.  This checker parses fenced code
blocks out of markdown files and:

- **runs** every ``repro`` CLI command found in ``bash``/``console``/
  ``sh`` blocks (``repro ...`` is rewritten to ``python -m repro ...``).
  Commands within one file share a scratch working directory, in
  order, so an example that generates ``graph.txt`` can be consumed by
  the next block — exactly how a reader would run them.  Non-repro
  commands (``pip``, ``pytest``, ``cmp`` …) are skipped;
- **compiles** every ``python`` block (syntax check); blocks preceded
  by an ``<!-- docs-check: run -->`` marker are also executed;
- **resolves** every relative markdown link to an existing file.

Opt a block out with ``<!-- docs-check: skip -->`` on the line (or up
to two lines) above the fence — for commands that need artifacts only
a failure produces, or that are deliberately long-running.

Usage::

    python tools/check_docs.py                 # README.md + docs/*.md
    python tools/check_docs.py docs/serving.md # specific files
    python tools/check_docs.py --list          # show what would run
"""

from __future__ import annotations

import argparse
import os
import re
import subprocess
import sys
import tempfile
from dataclasses import dataclass, field
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
COMMAND_TIMEOUT_SECONDS = 300

_FENCE_RE = re.compile(r"^(```+|~~~+)\s*([A-Za-z0-9_+-]*)\s*$")
_MARKER_RE = re.compile(r"<!--\s*docs-check:\s*(skip|run)\s*-->")
_LINK_RE = re.compile(r"(?<!\!)\[[^\]]*\]\(([^)\s]+)\)")
_SHELL_LANGS = {"bash", "console", "sh", "shell"}


@dataclass
class CodeBlock:
    path: Path
    line: int          # 1-based line of the opening fence
    lang: str
    body: list[str]
    marker: str | None = None  # "skip" | "run" | None


@dataclass
class Failure:
    path: Path
    line: int
    what: str
    detail: str

    def __str__(self) -> str:
        head = f"{self.path}:{self.line}: {self.what}"
        detail = self.detail.strip()
        if detail:
            indented = "\n".join("    " + l for l in detail.splitlines()[-15:])
            return f"{head}\n{indented}"
        return head


@dataclass
class FileReport:
    path: Path
    commands_run: int = 0
    commands_skipped: int = 0
    blocks_compiled: int = 0
    blocks_executed: int = 0
    links_checked: int = 0
    failures: list[Failure] = field(default_factory=list)


def parse_blocks(path: Path) -> tuple[list[CodeBlock], list[str]]:
    """All fenced code blocks in ``path`` plus the raw lines."""
    lines = path.read_text(encoding="utf-8").splitlines()
    blocks: list[CodeBlock] = []
    fence = None  # (fence string, CodeBlock) while inside a block
    for i, line in enumerate(lines):
        match = _FENCE_RE.match(line.strip())
        if fence is not None:
            if match and match.group(1)[0] == fence[0][0] and not match.group(2):
                blocks.append(fence[1])
                fence = None
            else:
                fence[1].body.append(line)
            continue
        if match:
            marker = None
            for back in (1, 2):
                if i - back >= 0:
                    marker_match = _MARKER_RE.search(lines[i - back])
                    if marker_match:
                        marker = marker_match.group(1)
                        break
                    if lines[i - back].strip():
                        break
            fence = (
                match.group(1),
                CodeBlock(path, i + 1, match.group(2).lower(), [], marker),
            )
    return blocks, lines


def shell_commands(block: CodeBlock) -> list[str]:
    """The commands a reader would type from a shell block.

    ``console`` blocks contribute the ``$ ``-prefixed lines (output
    lines are ignored); ``bash`` blocks contribute every non-comment
    line.  Trailing-backslash continuations are joined either way.
    """
    commands: list[str] = []
    pending: str | None = None
    for raw in block.body:
        line = raw.rstrip()
        if pending is not None:
            pending += " " + line.strip().rstrip("\\").strip()
            if not line.endswith("\\"):
                commands.append(pending)
                pending = None
            continue
        stripped = line.strip()
        if block.lang == "console":
            if not stripped.startswith("$ "):
                continue
            stripped = stripped[2:].strip()
        if not stripped or stripped.startswith("#"):
            continue
        if stripped.endswith("\\"):
            pending = stripped.rstrip("\\").strip()
        else:
            commands.append(stripped)
    if pending is not None:
        commands.append(pending)
    return commands


def runnable_form(command: str) -> str | None:
    """The executable form of a doc command, or None to skip it."""
    if command.startswith("repro "):
        command = "python -m " + command
    if command.startswith("python -m repro"):
        return command
    return None


def check_file(path: Path, list_only: bool = False) -> FileReport:
    report = FileReport(path)
    blocks, lines = parse_blocks(path)
    workdir = Path(tempfile.mkdtemp(prefix=f"docs-check-{path.stem}-"))
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = src + (os.pathsep + existing if existing else "")

    def run(command: str, line: int, what: str) -> None:
        if list_only:
            print(f"  would run [{path.name}:{line}] {command}")
            return
        try:
            proc = subprocess.run(
                command,
                shell=True,
                cwd=workdir,
                env=env,
                capture_output=True,
                text=True,
                timeout=COMMAND_TIMEOUT_SECONDS,
            )
        except subprocess.TimeoutExpired:
            report.failures.append(
                Failure(path, line, f"{what} timed out", command)
            )
            return
        if proc.returncode != 0:
            report.failures.append(
                Failure(
                    path,
                    line,
                    f"{what} exited {proc.returncode}: {command}",
                    proc.stderr or proc.stdout,
                )
            )

    for block in blocks:
        if block.marker == "skip":
            continue
        if block.lang in _SHELL_LANGS:
            for command in shell_commands(block):
                form = runnable_form(command)
                if form is None:
                    report.commands_skipped += 1
                    continue
                report.commands_run += 1
                run(form, block.line, "command")
        elif block.lang == "python":
            source = "\n".join(block.body)
            try:
                compile(source, f"{path}:{block.line}", "exec")
            except SyntaxError as exc:
                report.failures.append(
                    Failure(path, block.line, "python block does not compile",
                            str(exc))
                )
                continue
            report.blocks_compiled += 1
            if block.marker == "run":
                script = workdir / f"_block_{block.line}.py"
                if not list_only:
                    script.write_text(source, encoding="utf-8")
                report.blocks_executed += 1
                run(f"python {script.name}", block.line, "python block")

    # Relative links must point at real files.
    in_fence = False
    for i, line in enumerate(lines):
        if _FENCE_RE.match(line.strip()):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        for target in _LINK_RE.findall(line):
            if target.startswith(("http://", "https://", "mailto:", "#")):
                continue
            report.links_checked += 1
            resolved = (path.parent / target.split("#", 1)[0]).resolve()
            if not resolved.exists():
                report.failures.append(
                    Failure(path, i + 1, f"broken link: {target}", "")
                )
    return report


_ADD_PARSER_RE = re.compile(r"\bsub\.add_parser\(\s*\"([a-z0-9-]+)\"", re.S)
_CLI_TABLE_ROW_RE = re.compile(r"^\|\s*`([a-z0-9-]+)`\s*\|", re.M)


def check_cli_table(api_md: Path) -> list[Failure]:
    """Every top-level CLI subcommand must have a row in api.md's table.

    The table in the "Command line" section is the canonical CLI
    surface listing; this guard catches the recurring drift where a PR
    adds a subcommand but not its row.
    """
    cli_source = (REPO_ROOT / "src" / "repro" / "cli.py").read_text(
        encoding="utf-8"
    )
    subcommands = set(_ADD_PARSER_RE.findall(cli_source))
    documented = set(_CLI_TABLE_ROW_RE.findall(api_md.read_text(encoding="utf-8")))
    failures = []
    for name in sorted(subcommands - documented):
        failures.append(
            Failure(
                api_md, 0,
                f"CLI subcommand `{name}` missing from the command table",
                "add a row to the 'Command line' table in docs/api.md",
            )
        )
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "files", nargs="*", type=Path,
        help="markdown files (default: README.md and docs/*.md)",
    )
    parser.add_argument(
        "--list", action="store_true",
        help="list the commands without executing anything",
    )
    args = parser.parse_args(argv)
    files = args.files or [
        REPO_ROOT / "README.md",
        *sorted((REPO_ROOT / "docs").glob("*.md")),
    ]

    exit_code = 0
    for path in files:
        if not path.exists():
            print(f"{path}: no such file", file=sys.stderr)
            exit_code = 1
            continue
        report = check_file(path, list_only=args.list)
        if path.name == "api.md" and not args.list:
            report.failures.extend(check_cli_table(path))
        status = "FAIL" if report.failures else "ok"
        print(
            f"{status:4} {path}: {report.commands_run} command(s) run, "
            f"{report.commands_skipped} non-repro skipped, "
            f"{report.blocks_compiled} python block(s) compiled "
            f"({report.blocks_executed} executed), "
            f"{report.links_checked} link(s)"
        )
        for failure in report.failures:
            print(failure, file=sys.stderr)
            exit_code = 1
    return exit_code


if __name__ == "__main__":
    sys.exit(main())
